package core

import (
	"testing"

	"checl/internal/hw"
	"checl/internal/ocl"
	"checl/internal/proc"
	"checl/internal/store"
	"checl/internal/vtime"
)

// specVaddRun drives one vadd application through a checkpoint with work
// issued mid-epoch (speculative arm) or just before the checkpoint
// (stop-drain arm): the device state at commit is identical either way,
// so the two arms must produce bit-identical images.
func specVaddRun(t *testing.T, speculative bool) (CheckpointStats, map[Handle]string, map[Handle]string) {
	t.Helper()
	node := newNodeNV("pc0")
	st := store.New(proc.NewFS("ckpt-disk", hw.TableISpec().LocalDisk), fineChunks)
	_, c := attach(t, node, Options{Incremental: true, DrainWorkers: 4, SpeculativeDrain: speculative})
	app := setupVaddApp(t, c, 1<<14)
	app.launch(t)
	if err := c.Finish(app.q); err != nil {
		t.Fatal(err)
	}

	if speculative {
		if err := c.BeginCheckpointEpoch(); err != nil {
			t.Fatal(err)
		}
		if got := c.EpochState(); got != EpochSpeculating {
			t.Fatalf("epoch state after begin = %v, want Speculating", got)
		}
	}

	// Work after the copies started: rewrite the output buffer, then
	// launch the kernel again (its write-set names the output buffer).
	// Both must violate the in-flight speculative copy of app.c.
	junk := make([]byte, 4*app.n)
	for i := range junk {
		junk[i] = byte(i*13 + 7)
	}
	if _, err := c.EnqueueWriteBuffer(app.q, app.c, true, 0, junk, nil); err != nil {
		t.Fatal(err)
	}
	app.launch(t)
	if err := c.Finish(app.q); err != nil {
		t.Fatal(err)
	}

	stats, err := c.CheckpointToStore(st, "vadd")
	if err != nil {
		t.Fatal(err)
	}
	if got := c.EpochState(); got != EpochIdle {
		t.Fatalf("epoch state after checkpoint = %v, want Idle", got)
	}
	live := memDigests(t, c)

	rc, rst, err := RestoreFromStore(node, st, "vadd", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { rc.Detach(); rc.App().Kill() }()
	if rst.Degraded != nil {
		t.Fatalf("restore degraded: %v", rst.Degraded)
	}
	return stats, live, memDigests(t, rc)
}

// TestSpeculativeEpochBitIdentical: a checkpoint that speculated through
// mid-epoch writes and kernel launches restores bit-identical to the live
// state and to a stop-drain checkpoint of the same state — the violated
// copies were detected and re-drained.
func TestSpeculativeEpochBitIdentical(t *testing.T) {
	spec, specLive, specRestored := specVaddRun(t, true)
	base, _, baseRestored := specVaddRun(t, false)

	if !spec.Speculative {
		t.Fatal("speculative arm did not commit an epoch")
	}
	if base.Speculative {
		t.Fatal("baseline arm committed an epoch")
	}
	if spec.SpeculatedBuffers != 3 {
		t.Errorf("SpeculatedBuffers = %d, want 3", spec.SpeculatedBuffers)
	}
	if spec.ViolatedBuffers < 1 {
		t.Errorf("ViolatedBuffers = %d, want >= 1 (output buffer was written mid-epoch)", spec.ViolatedBuffers)
	}
	if spec.RecopiedBytes <= 0 {
		t.Errorf("RecopiedBytes = %d, want > 0", spec.RecopiedBytes)
	}

	for h, want := range specLive {
		if got := specRestored[h]; got != want {
			t.Errorf("buffer %v: restored %s != live %s (stale speculative copy committed)", h, got, want)
		}
	}
	if len(specRestored) != len(baseRestored) {
		t.Fatalf("object count diverged: speculative=%d stop-drain=%d", len(specRestored), len(baseRestored))
	}
	for h, want := range baseRestored {
		if got := specRestored[h]; got != want {
			t.Errorf("buffer %v: speculative image %s != stop-drain image %s", h, got, want)
		}
	}
}

// TestSpeculativeDrainHidden: with application progress between epoch
// begin and commit, the speculative checkpoint's preprocess shrinks to
// the violated residue and the hidden copy time shows up as Overlap.
func TestSpeculativeDrainHidden(t *testing.T) {
	run := func(speculative bool) CheckpointStats {
		node := newNodeNV("pc0")
		st := store.New(proc.NewFS("ckpt-disk", hw.TableISpec().LocalDisk), fineChunks)
		_, c := attach(t, node, Options{Incremental: true, DrainWorkers: 4, SpeculativeDrain: speculative})
		app := setupVaddApp(t, c, 1<<16) // 256 KiB per buffer
		app.launch(t)
		if err := c.Finish(app.q); err != nil {
			t.Fatal(err)
		}

		// A small side buffer soaks up the mid-epoch writes so the three
		// big vadd buffers stay unviolated.
		small, err := c.CreateBuffer(app.ctx, ocl.MemReadWrite, 1<<10, nil)
		if err != nil {
			t.Fatal(err)
		}
		sk, err := c.CreateKernel(app.prog, "scale")
		if err != nil {
			t.Fatal(err)
		}
		if err := c.SetKernelArg(sk, 0, 8, handleBytes(small)); err != nil {
			t.Fatal(err)
		}
		if err := c.SetKernelArg(sk, 1, 4, f32bytes(1.5)); err != nil {
			t.Fatal(err)
		}

		if speculative {
			if err := c.BeginCheckpointEpoch(); err != nil {
				t.Fatal(err)
			}
		}
		// Progress during the epoch: enough kernel time to hide the
		// overlapped drain of the big buffers.
		for i := 0; i < 64; i++ {
			if _, err := c.EnqueueNDRangeKernel(app.q, sk, 1, [3]int{}, [3]int{1 << 8}, [3]int{64}, nil); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Finish(app.q); err != nil {
			t.Fatal(err)
		}

		stats, err := c.CheckpointToStore(st, "vadd")
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}

	spec := run(true)
	base := run(false)

	if spec.ViolatedBuffers != 1 {
		t.Errorf("ViolatedBuffers = %d, want 1 (only the small scale buffer)", spec.ViolatedBuffers)
	}
	if spec.Overlap <= 0 {
		t.Errorf("Overlap = %s, want > 0 (drain hidden behind kernel time)", spec.Overlap)
	}
	if spec.Phases.Preprocess*2 >= base.Phases.Preprocess {
		t.Errorf("speculative preprocess %s not well below stop-drain %s",
			spec.Phases.Preprocess, base.Phases.Preprocess)
	}
	if spec.StallTime >= base.StallTime {
		t.Errorf("speculative stall %s >= stop-drain stall %s", spec.StallTime, base.StallTime)
	}
}

// TestSpeculationConservativeFallback: a kernel whose clc analysis failed
// (no recorded write-set) must conservatively violate every buffer it
// binds during an epoch — the pessimistic launch can never commit a stale
// speculative copy. The control arm with the analysis intact violates
// only the kernel's actual write-set.
func TestSpeculationConservativeFallback(t *testing.T) {
	run := func(dropWriteSet bool) (CheckpointStats, map[Handle]string, map[Handle]string) {
		node := newNodeNV("pc0")
		st := store.New(proc.NewFS("ckpt-disk", hw.TableISpec().LocalDisk), fineChunks)
		_, c := attach(t, node, Options{Incremental: true, DrainWorkers: 4, SpeculativeDrain: true})
		app := setupVaddApp(t, c, 1<<12)
		app.launch(t)
		if err := c.Finish(app.q); err != nil {
			t.Fatal(err)
		}

		if dropWriteSet {
			// Simulate failed write-set analysis (indirect stores, an
			// unparsed builtin): the program record keeps no entry for the
			// kernel, so writtenMems falls back to every bound buffer.
			prec, err := c.db.program(Handle(app.prog))
			if err != nil {
				t.Fatal(err)
			}
			delete(prec.WriteSets, "vadd")
		}

		if err := c.BeginCheckpointEpoch(); err != nil {
			t.Fatal(err)
		}
		app.launch(t) // mid-epoch launch: writes c, analysis may not know
		if err := c.Finish(app.q); err != nil {
			t.Fatal(err)
		}

		stats, err := c.CheckpointToStore(st, "vadd")
		if err != nil {
			t.Fatal(err)
		}
		live := memDigests(t, c)
		rc, _, err := RestoreFromStore(node, st, "vadd", Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer func() { rc.Detach(); rc.App().Kill() }()
		return stats, live, memDigests(t, rc)
	}

	pess, pessLive, pessRestored := run(true)
	exact, _, exactRestored := run(false)

	if pess.ViolatedBuffers != 3 {
		t.Errorf("pessimistic launch violated %d buffers, want all 3 bound", pess.ViolatedBuffers)
	}
	if exact.ViolatedBuffers != 1 {
		t.Errorf("analysed launch violated %d buffers, want 1 (the write-set)", exact.ViolatedBuffers)
	}
	for h, want := range pessLive {
		if got := pessRestored[h]; got != want {
			t.Errorf("buffer %v: pessimistic image stale (%s != live %s)", h, got, want)
		}
	}
	for h, want := range exactRestored {
		if got := pessRestored[h]; got != want {
			t.Errorf("buffer %v: pessimistic image %s != analysed image %s", h, got, want)
		}
	}
}

// TestSpeculativeRetryLadder: a producer that keeps re-violating buffers
// between validation passes cannot livelock the commit — after
// maxSpecRetries re-copy passes the residue is taken by a final
// unconditional pass and the checkpoint completes with correct bytes.
func TestSpeculativeRetryLadder(t *testing.T) {
	node := newNodeNV("pc0")
	st := store.New(proc.NewFS("ckpt-disk", hw.TableISpec().LocalDisk), fineChunks)
	_, c := attach(t, node, Options{Incremental: true, DrainWorkers: 4, SpeculativeDrain: true})
	app := setupVaddApp(t, c, 1<<12)
	app.launch(t)
	if err := c.Finish(app.q); err != nil {
		t.Fatal(err)
	}

	if err := c.BeginCheckpointEpoch(); err != nil {
		t.Fatal(err)
	}
	junk := make([]byte, 4*app.n)
	for i := range junk {
		junk[i] = byte(i*3 + 1)
	}
	if _, err := c.EnqueueWriteBuffer(app.q, app.c, true, 0, junk, nil); err != nil {
		t.Fatal(err)
	}

	// Adversarial producer: every validation pass re-violates the output
	// buffer. Without the bounded ladder the commit would never converge.
	passes := 0
	c.specReviolate = func(pass int) []Handle {
		passes = pass
		return []Handle{Handle(app.c)}
	}
	stats, err := c.CheckpointToStore(st, "vadd")
	if err != nil {
		t.Fatal(err)
	}
	c.specReviolate = nil

	if passes != maxSpecRetries-1 {
		t.Errorf("reviolation hook last consulted at pass %d, want %d", passes, maxSpecRetries-1)
	}
	wantRecopied := int64(maxSpecRetries) * int64(4*app.n)
	if stats.RecopiedBytes != wantRecopied {
		t.Errorf("RecopiedBytes = %d, want %d (%d bounded passes)", stats.RecopiedBytes, wantRecopied, maxSpecRetries)
	}

	live := memDigests(t, c)
	rc, _, err := RestoreFromStore(node, st, "vadd", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { rc.Detach(); rc.App().Kill() }()
	for h, want := range live {
		if got := memDigests(t, rc)[h]; got != want {
			t.Errorf("buffer %v diverged after retry-ladder commit", h)
		}
	}
}

// TestSpeculativeEpochAbortOnFailover: a proxy death mid-epoch aborts the
// epoch deterministically — the next checkpoint stop-drains, reports the
// abort reason, and still restores bit-identical.
func TestSpeculativeEpochAbortOnFailover(t *testing.T) {
	node := newNodeNV("pc0")
	st := store.New(proc.NewFS("ckpt-disk", hw.TableISpec().LocalDisk), fineChunks)
	_, c := attach(t, node, Options{
		Incremental: true, DrainWorkers: 4, SpeculativeDrain: true,
		AutoFailover: true, Shadow: ShadowFull,
	})
	app := setupVaddApp(t, c, 1<<12)
	app.launch(t)
	if err := c.Finish(app.q); err != nil {
		t.Fatal(err)
	}

	if err := c.BeginCheckpointEpoch(); err != nil {
		t.Fatal(err)
	}
	if got := c.EpochState(); got != EpochSpeculating {
		t.Fatalf("epoch state = %v, want Speculating", got)
	}

	// Kill the proxy mid-epoch; the next forwarded call fails over and
	// must abort the epoch (the dead proxy's copies are worthless).
	c.px.Kill()
	junk := make([]byte, 4*app.n)
	if _, err := c.EnqueueWriteBuffer(app.q, app.c, true, 0, junk, nil); err != nil {
		t.Fatalf("write across failover: %v", err)
	}
	if got := c.EpochState(); got != EpochIdle {
		t.Fatalf("epoch state after failover = %v, want Idle (aborted)", got)
	}

	stats, err := c.CheckpointToStore(st, "vadd")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Speculative {
		t.Error("checkpoint after abort still committed an epoch")
	}
	if stats.EpochAborted != "proxy failover" {
		t.Errorf("EpochAborted = %q, want \"proxy failover\"", stats.EpochAborted)
	}

	live := memDigests(t, c)
	rc, _, err := RestoreFromStore(node, st, "vadd", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { rc.Detach(); rc.App().Kill() }()
	restored := memDigests(t, rc)
	for h, want := range live {
		if got := restored[h]; got != want {
			t.Errorf("buffer %v diverged after mid-epoch failover", h)
		}
	}
}

// TestSpeculativeStallTracker: the core checkpoint path feeds the shared
// vtime.StallTracker — phase labels for every checkpoint, spec labels for
// speculative ones — instead of an ad-hoc counter.
func TestSpeculativeStallTracker(t *testing.T) {
	node := newNodeNV("pc0")
	st := store.New(proc.NewFS("ckpt-disk", hw.TableISpec().LocalDisk), fineChunks)
	_, c := attach(t, node, Options{Incremental: true, DrainWorkers: 4, SpeculativeDrain: true})
	app := setupVaddApp(t, c, 1<<14)
	app.launch(t)
	if err := c.Finish(app.q); err != nil {
		t.Fatal(err)
	}
	if err := c.BeginCheckpointEpoch(); err != nil {
		t.Fatal(err)
	}
	stats, err := c.CheckpointToStore(st, "vadd")
	if err != nil {
		t.Fatal(err)
	}

	labels := c.Stall().ByLabel()
	if labels["spec-begin"] <= 0 {
		t.Errorf("spec-begin stall missing: %v", labels)
	}
	if labels["ckpt-write"] <= 0 {
		t.Errorf("ckpt-write stall missing: %v", labels)
	}
	if c.Stall().Total() <= 0 {
		t.Error("stall tracker recorded nothing")
	}
	var sum vtime.Duration
	for _, d := range labels {
		sum += d
	}
	if sum != c.Stall().Total() {
		t.Errorf("per-label sum %s != total %s", sum, c.Stall().Total())
	}
	if stats.StallTime < stats.Phases.Total() {
		t.Errorf("StallTime %s below phase total %s", stats.StallTime, stats.Phases.Total())
	}
}
