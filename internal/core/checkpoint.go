package core

import (
	"errors"
	"fmt"
	"sort"

	"checl/internal/cpr"
	"checl/internal/hw"
	"checl/internal/ocl"
	"checl/internal/proc"
	"checl/internal/proxy"
	"checl/internal/store"
	"checl/internal/vtime"
)

// dbRegion is the name of the application memory region holding the
// serialised CheCL object database during a dump.
const dbRegion = "checl.db"

// PhaseTimes is the four-phase breakdown of §III-C / Fig. 5.
type PhaseTimes struct {
	Sync        vtime.Duration // drain host + all command queues
	Preprocess  vtime.Duration // copy device buffers to host memory
	Write       vtime.Duration // conventional CPR dump of the host image
	Postprocess vtime.Duration // free the staged copies
}

// Total sums the phases.
func (p PhaseTimes) Total() vtime.Duration {
	return p.Sync + p.Preprocess + p.Write + p.Postprocess
}

// CheckpointStats describes one completed checkpoint.
type CheckpointStats struct {
	Phases        PhaseTimes
	FileSize      int64
	Path          string
	FSName        string
	StagedBuffers int
	StagedBytes   int64

	// Incremental breakdown: dirty buffers were re-staged from the
	// device, clean buffers kept their previous staged copy (and, for
	// store checkpoints, reuse the parent generation's chunk refs).
	DirtyBuffers    int
	DirtyBytes      int64
	CleanBuffers    int
	CleanBytes      int64
	SkippedReleased int // dead records (released but still kernel-bound)
	DrainWorkers    int // device-to-host streams used by the preprocess

	// Store-backed checkpoints only: the manifest written and the
	// dedup/compression breakdown of the Put. Nil for flat-file dumps.
	Manifest string
	StorePut *store.PutStats

	// Overlapped store writes (Options.OverlapStoreWrite, delayed mode):
	// BackgroundWrite marks a checkpoint whose store write was released
	// to the background — Manifest/StorePut/Overlap are filled in on
	// LastCheckpoint() once the barrier lands. Overlap is the portion of
	// the write hidden behind application progress. BackgroundErr on a
	// later checkpoint reports that the previous generation's background
	// write failed (that checkpoint re-staged everything).
	BackgroundWrite bool
	Overlap         vtime.Duration
	BackgroundErr   *BackgroundWriteError

	// Speculative (stop-free) checkpointing (Options.SpeculativeDrain):
	// Speculative marks a checkpoint that committed an epoch.
	// SpeculatedBuffers/SpeculatedBytes count the overlapped copies;
	// ViolatedBuffers those whose write-set was touched after their copy
	// began; RecopiedBytes the re-drained residue (retry ladder plus
	// fallback). StallTime is the application-visible stall of the whole
	// checkpoint — phase total plus epoch submission — while Overlap
	// accumulates the drain (and store-write) time hidden behind
	// application progress. EpochAborted names the fault that killed an
	// epoch before this checkpoint, which then stop-drained instead.
	Speculative       bool
	SpeculatedBuffers int
	SpeculatedBytes   int64
	ViolatedBuffers   int
	RecopiedBytes     int64
	StallTime         vtime.Duration
	EpochAborted      string
}

// BackgroundWriteError is the typed failure of an overlapped store write,
// surfaced at the barrier (the next checkpoint or WaitBackgroundWrite).
type BackgroundWriteError struct {
	Job string
	Err error
}

func (e *BackgroundWriteError) Error() string {
	return fmt.Sprintf("checl: background store write of job %q failed: %v", e.Job, e.Err)
}

func (e *BackgroundWriteError) Unwrap() error { return e.Err }

// bgWrite tracks one overlapped store write. The goroutine runs the Put
// against a scratch clock; the barrier charges the portion of its virtual
// duration that application progress did not already cover.
type bgWrite struct {
	job       string
	done      chan struct{}
	startedAt vtime.Time     // application clock when the write launched
	dur       vtime.Duration // virtual duration of the Put
	man       string
	put       *store.PutStats
	err       error
}

// memRegion names the application memory region holding one buffer's
// staged contents during a dump. Keyed by the stable CheCL handle, so the
// region name — and therefore its store segment — is identical across
// generations, which is what lets clean segments reuse parent chunk refs.
func memRegion(h Handle) string { return fmt.Sprintf("checl.mem/%x", uint64(h)) }

// Checkpoint performs the §III-C procedure: synchronise, stage device
// buffers into host memory, dump the (now OpenCL-free) application process
// with the conventional CPR backend, and drop the staged copies.
func (c *CheCL) Checkpoint(fs *proc.FS, path string) (CheckpointStats, error) {
	stats := CheckpointStats{Path: path, FSName: fs.Name()}
	err := c.runCheckpoint(&stats, func(map[string]bool) (int64, error) {
		wst, err := c.opts.Backend.Checkpoint(c.app, fs, path)
		return wst.Bytes, err
	})
	return stats, err
}

// CheckpointToStore is Checkpoint with the content-addressed store as the
// destination: phase 3 hands the image to the store, which chunks it and
// writes only what previous checkpoints (of any job) have not already
// stored. The configured Backend must support store checkpoints (both
// simulated backends do).
func (c *CheCL) CheckpointToStore(st store.Backend, job string) (CheckpointStats, error) {
	sb, ok := c.opts.Backend.(cpr.StoreBackend)
	if !ok {
		return CheckpointStats{}, fmt.Errorf("checl: backend %s cannot checkpoint to a store", c.opts.Backend.Name())
	}
	stats := CheckpointStats{Path: job, FSName: st.Name()}
	// Barrier on a previous overlapped write: the new generation dedups
	// against its parent, so the parent must be committed first. If it
	// failed, the clean flags describe an uncommitted generation — every
	// buffer is re-staged and the failure is surfaced typed.
	if err := c.WaitBackgroundWrite(); err != nil {
		if bge := (*BackgroundWriteError)(nil); errors.As(err, &bge) {
			stats.BackgroundErr = bge
		} else {
			stats.BackgroundErr = &BackgroundWriteError{Job: job, Err: err}
		}
		for _, m := range c.db.mems {
			m.Dirty = true
		}
	}
	err := c.runCheckpoint(&stats, func(clean map[string]bool) (int64, error) {
		if c.opts.OverlapStoreWrite && c.opts.Mode == Delayed && !c.opts.Destructive {
			return c.startBackgroundPut(sb, st, job, clean, &stats)
		}
		wst, put, err := sb.CheckpointToStoreIncremental(c.app, st, job, clean)
		if err != nil {
			return 0, err
		}
		stats.Manifest = put.Manifest
		stats.StorePut = put
		return wst.Bytes, nil
	})
	return stats, err
}

// startBackgroundPut snapshots the process image synchronously and hands
// the chunk/compress/write pipeline to a background goroutine against a
// scratch clock, releasing the application immediately. The barrier
// (WaitBackgroundWrite) charges whatever portion of the write the
// application's own progress did not hide.
func (c *CheCL) startBackgroundPut(sb cpr.StoreBackend, st store.Backend, job string, clean map[string]bool, stats *CheckpointStats) (int64, error) {
	data, segs, err := cpr.SnapshotStoreImage(sb, c.app, clean)
	if err != nil {
		return 0, err
	}
	bg := &bgWrite{job: job, done: make(chan struct{}), startedAt: c.app.Clock().Now()}
	c.bg = bg
	go func() {
		defer close(bg.done)
		scratch := vtime.NewClock()
		sw := vtime.NewStopwatch(scratch)
		_, put, err := st.PutSegmented(scratch, job, data, segs)
		bg.dur = sw.Elapsed()
		if err != nil {
			bg.err = err
			return
		}
		bg.man = put.Manifest
		bg.put = &put
	}()
	stats.BackgroundWrite = true
	return int64(len(data)), nil
}

// WaitBackgroundWrite barriers on an in-flight overlapped store write:
// it blocks until the write lands, charges the non-hidden remainder of
// its virtual duration to the application clock, retro-fills the last
// checkpoint's Manifest/StorePut/Overlap (visible via LastCheckpoint),
// and returns the write's failure, if any, as a *BackgroundWriteError.
// It is a no-op when no write is in flight.
func (c *CheCL) WaitBackgroundWrite() error {
	bg := c.bg
	if bg == nil {
		return nil
	}
	c.bg = nil
	<-bg.done
	clock := c.app.Clock()
	hidden := clock.Now().Sub(bg.startedAt)
	if hidden > bg.dur {
		hidden = bg.dur
	}
	// AdvanceTo is monotone: if the application already ran past the
	// write's end, the whole write was hidden and nothing is charged.
	clock.AdvanceTo(bg.startedAt.Add(bg.dur))
	c.stall.Add("write-barrier", bg.dur-hidden)
	if bg.err != nil {
		return &BackgroundWriteError{Job: bg.job, Err: bg.err}
	}
	if lc := c.lastCkpt; lc != nil && lc.BackgroundWrite && lc.Manifest == "" {
		lc.Manifest = bg.man
		lc.StorePut = bg.put
		lc.Overlap = hidden
	}
	return nil
}

// runCheckpoint executes the four §III-C phases around a pluggable
// phase-3 writer (flat file or store), filling stats in place. The
// writer receives the clean-region map (nil outside incremental mode):
// region names of buffers whose staged copy is byte-identical to the
// previous generation's, so a store writer can reuse parent chunk refs.
func (c *CheCL) runCheckpoint(stats *CheckpointStats, dump func(clean map[string]bool) (int64, error)) error {
	clock := c.app.Clock()

	// A speculative epoch that died before this checkpoint (proxy
	// failover, failed begin) is reported here; the checkpoint below
	// stop-drains as usual.
	if c.epochAborted != "" {
		stats.EpochAborted = c.epochAborted
		c.epochAborted = ""
	}

	// Phase 1: synchronisation. Deferred batched commands must reach the
	// proxy before the queues drain, and any deferred error fails the
	// checkpoint here, before an incomplete state could be dumped.
	sw := vtime.NewStopwatch(clock)
	if err := c.flushBatch(); err != nil {
		return fmt.Errorf("checl: checkpoint drain: %w", err)
	}
	// Posted (fire-and-forget) transport submissions settle before the
	// queues drain, so a deferred remote error fails the checkpoint here
	// and never hides inside the dumped state.
	if err := c.forward("SettlePosted", func(api *proxy.Client) error {
		return api.SettlePosted()
	}); err != nil {
		return fmt.Errorf("checl: checkpoint settle: %w", err)
	}
	for _, q := range c.db.orderedQueues() {
		qrec := q
		if err := c.forward("clFinish", func(api *proxy.Client) error {
			return api.Finish(qrec.real)
		}); err != nil {
			return fmt.Errorf("checl: checkpoint sync: %w", err)
		}
	}
	stats.Phases.Sync = sw.Reset()
	c.stall.Add("ckpt-sync", stats.Phases.Sync)

	// Commit an open speculative epoch now that the queues are quiesced:
	// the overlapped drain is barriered, violated copies are re-drained,
	// and the surviving entries are adopted by the partition below in
	// place of a stop-drain. commitEpoch charges its own stall labels
	// (spec-wait, spec-commit); epochSW carves them out of ckpt-drain.
	epochSW := vtime.NewStopwatch(clock)
	spec, err := c.commitEpoch(stats)
	if err != nil {
		return fmt.Errorf("checl: checkpoint preprocess: %w", err)
	}
	specCharged := epochSW.Elapsed()

	// Phase 2: preprocessing. Copy user data from device memory to host
	// memory. In incremental mode only buffers possibly modified since
	// the previous checkpoint are re-staged; clean buffers keep their
	// previous staged copy and are reported to the phase-3 writer so a
	// store can reuse the parent generation's chunk refs. CL_MEM_USE_HOST_PTR
	// buffers are always conservatively dirty: the application can write
	// through the aliased host pointer without any API call CheCL sees.
	var clean map[string]bool
	if c.opts.Incremental {
		clean = map[string]bool{}
	}
	var dirty []*memRec
	for _, m := range c.db.orderedMems() {
		if m.Released {
			// Dead record: refcount hit zero but a kernel argument still
			// names the buffer. Its contents are unreachable by the
			// application — nothing to copy; restore recreates a
			// placeholder allocation.
			stats.SkippedReleased++
			continue
		}
		if ent, ok := spec[m.H]; ok {
			// Adopted speculative copy: the epoch already produced (and
			// validated) this buffer's bytes, so the stop-drain below
			// skips it. The bytes are new relative to the parent
			// generation — the buffer is NOT reported clean to the
			// phase-3 writer.
			m.Data = ent.data
			m.Dirty = false
			stats.StagedBuffers++
			stats.StagedBytes += m.Size
			stats.DirtyBuffers++
			stats.DirtyBytes += m.Size
			continue
		}
		if c.opts.Incremental && !m.Dirty && !m.UseHostPtr && m.Data != nil {
			clean[memRegion(m.H)] = true
			stats.CleanBuffers++
			stats.CleanBytes += m.Size
			continue
		}
		if c.anyQueueFor(m.Ctx) == nil {
			// No queue in this context: the buffer was never usable by a
			// kernel; stage zeros of the right size.
			m.Data = make([]byte, m.Size)
			m.Dirty = false
			stats.StagedBuffers++
			stats.StagedBytes += m.Size
			stats.DirtyBuffers++
			stats.DirtyBytes += m.Size
			continue
		}
		dirty = append(dirty, m)
	}
	stats.DrainWorkers = 1
	if stats.Speculative && c.opts.DrainWorkers > 1 {
		stats.DrainWorkers = c.opts.DrainWorkers
	}
	if c.opts.DrainWorkers > 1 && len(dirty) > 1 {
		stats.DrainWorkers = c.opts.DrainWorkers
		if err := c.drainParallel(dirty, c.opts.DrainWorkers); err != nil {
			return fmt.Errorf("checl: checkpoint preprocess: %w", err)
		}
	} else {
		for _, m := range dirty {
			qrec := c.anyQueueFor(m.Ctx)
			mrec := m
			var data []byte
			if err := c.forward("clEnqueueReadBuffer", func(api *proxy.Client) error {
				var e error
				data, _, e = api.EnqueueReadBufferInto(qrec.real, mrec.real, true, 0, mrec.Size, nil, mrec.Data)
				return e
			}); err != nil {
				return fmt.Errorf("checl: checkpoint preprocess: %w", err)
			}
			m.Data = data
		}
	}
	for _, m := range dirty {
		m.Dirty = false
		stats.StagedBuffers++
		stats.StagedBytes += m.Size
		stats.DirtyBuffers++
		stats.DirtyBytes += m.Size
	}
	stats.Phases.Preprocess = sw.Reset()
	c.stall.Add("ckpt-drain", stats.Phases.Preprocess-specCharged)

	// Destructive (CheCUDA-style) ablation: tear down every OpenCL object
	// and the proxy before the dump.
	if c.opts.Destructive {
		c.px.Kill()
	}

	// Phase 3: write. Serialise the object database into the application's
	// address space — each staged buffer as its own region, keyed by the
	// stable CheCL handle, so unchanged buffers land in identical store
	// segments across generations — and let the dump function
	// (conventional CPR backend or checkpoint store) persist the image.
	blob, err := c.db.encodeStripped()
	if err != nil {
		return err
	}
	var memRegions []string
	for _, m := range c.db.orderedMems() {
		if m.Released || m.Data == nil {
			continue
		}
		name := memRegion(m.H)
		c.app.SetRegion(name, m.Data)
		memRegions = append(memRegions, name)
	}
	c.app.SetRegion(dbRegion, blob)
	bytes, err := dump(clean)
	if err != nil {
		return fmt.Errorf("checl: checkpoint write: %w", err)
	}
	stats.Phases.Write = sw.Reset()
	c.stall.Add("ckpt-write", stats.Phases.Write)
	stats.FileSize = bytes

	// Phase 4: postprocessing. Drop the staged copies to reclaim host
	// memory. (CheCL keeps the OpenCL objects alive — unlike CheCUDA, no
	// recreation is needed, which is why this phase is negligible.)
	c.app.RemoveRegion(dbRegion)
	for _, name := range memRegions {
		c.app.RemoveRegion(name)
	}
	if c.opts.Destructive {
		// CheCUDA-style recreation of everything that was torn down,
		// using the staged copies before they are dropped.
		vendor, verr := selectVendor(c.app.Node(), c.opts.VendorName)
		if verr != nil {
			return verr
		}
		px, perr := proxy.SpawnWithOptions(c.app, vendor, c.spawnOpts())
		if perr != nil {
			return perr
		}
		c.px = px
		if _, err := c.rebindAll(); err != nil {
			return fmt.Errorf("checl: destructive postprocess: %w", err)
		}
	}
	if !c.opts.Incremental && !c.shadowOn() {
		// With a shadow policy the staged copies double as the failover
		// shadows and must survive the checkpoint.
		for _, m := range c.db.mems {
			m.Data = nil
			m.Dirty = true
		}
	}
	stats.Phases.Postprocess = sw.Reset()
	c.stall.Add("ckpt-post", stats.Phases.Postprocess)
	// StallTime = what the application actually waited: the four phases
	// plus (for a speculative checkpoint) the epoch submission cost,
	// seeded into StallTime by commitEpoch. The hidden drain is in
	// Overlap, not here.
	stats.StallTime += stats.Phases.Total()
	c.lastCkpt = stats
	return nil
}

// drainParallel stages dirty buffers through up to `workers` concurrent
// device-to-host streams per context. Fresh (ephemeral) command queues
// have no backlog, so their copy chains overlap on the device's DMA
// engines; buffers are assigned longest-first to the least-loaded stream
// (LPT greedy) and a single batched round-trip issues every non-blocking
// read plus one finish per stream — one IPC latency charge for the whole
// drain instead of one per buffer.
func (c *CheCL) drainParallel(dirty []*memRec, workers int) error {
	// Queues cannot cross contexts; group and drain per context in
	// deterministic (Seq) order.
	byCtx := map[Handle][]*memRec{}
	var order []Handle
	for _, m := range dirty {
		if _, ok := byCtx[m.Ctx]; !ok {
			order = append(order, m.Ctx)
		}
		byCtx[m.Ctx] = append(byCtx[m.Ctx], m)
	}
	for _, ctxH := range order {
		if err := c.drainCtx(ctxH, byCtx[ctxH], workers); err != nil {
			return err
		}
	}
	return nil
}

func (c *CheCL) drainCtx(ctxH Handle, items []*memRec, workers int) error {
	ctx, err := c.db.context(ctxH)
	if err != nil {
		return err
	}
	if len(ctx.Devices) == 0 {
		return ocl.Errf("CheCL", ocl.InvalidContext, "context %#x has no devices", uint64(ctxH))
	}
	dev, err := c.db.device(ctx.Devices[0])
	if err != nil {
		return err
	}
	w := workers
	if w > len(items) {
		w = len(items)
	}

	// LPT greedy: biggest buffers first onto the least-loaded stream,
	// balancing the per-queue copy chains (the drain ends when the
	// longest chain does).
	order := make([]*memRec, len(items))
	copy(order, items)
	sort.Slice(order, func(i, j int) bool {
		if order[i].Size != order[j].Size {
			return order[i].Size > order[j].Size
		}
		return order[i].Seq < order[j].Seq
	})
	assign := make([]int, len(order))
	load := make([]int64, w)
	for i := range order {
		best := 0
		for q := 1; q < w; q++ {
			if load[q] < load[best] {
				best = q
			}
		}
		assign[i] = best
		load[best] += order[i].Size
	}

	return c.forward("checkpoint drain", func(api *proxy.Client) error {
		queues := make([]ocl.CommandQueue, w)
		for i := range queues {
			q, err := api.CreateCommandQueue(ctx.real, dev.real, 0)
			if err != nil {
				return err
			}
			queues[i] = q
		}
		defer func() {
			for _, q := range queues {
				api.ReleaseCommandQueue(q) //nolint:errcheck // best-effort teardown
			}
		}()
		cmds := make([]proxy.BatchCmd, 0, len(order)+w)
		for i, m := range order {
			cmds = append(cmds, proxy.BatchCmd{
				Op:    proxy.BatchRead,
				Queue: queues[assign[i]],
				Mem:   m.real,
				Size:  m.Size,
			})
		}
		for _, q := range queues {
			cmds = append(cmds, proxy.BatchCmd{Op: proxy.BatchFinish, Queue: q})
		}
		resp, raw, err := api.EnqueueBatch(cmds, nil)
		if err != nil {
			return err
		}
		if resp.ErrIdx >= 0 {
			return ocl.Errf(resp.ErrOp, ocl.Status(resp.ErrStatus), "%s", resp.ErrDetail)
		}
		// Copy each buffer's bytes out of the shared batch frame into its
		// staging buffer (reusing prior capacity) — the frame itself must
		// not be aliased past this call.
		off := int64(0)
		for i, m := range order {
			n := resp.ReadLens[i]
			buf := m.Data
			if int64(cap(buf)) >= n {
				buf = buf[:n]
			} else {
				buf = make([]byte, n)
			}
			copy(buf, raw[off:off+n])
			m.Data = buf
			off += n
		}
		return nil
	})
}

// anyQueueFor returns some queue of the given context, or nil.
func (c *CheCL) anyQueueFor(ctx Handle) *queueRec {
	for _, q := range c.db.orderedQueues() {
		if q.Ctx == ctx {
			return q
		}
	}
	return nil
}

// RestartStats is the per-class object recreation breakdown of Fig. 7.
type RestartStats struct {
	PerClass  map[string]vtime.Duration
	Recompile vtime.Duration // total clBuildProgram time (the Tr of Eq. 1)
	ReadTime  vtime.Duration // checkpoint file read
	Total     vtime.Duration
	// Degraded is non-nil when a store restore could not use the newest
	// generation and fell back along the parent chain; it lists the
	// generations that were skipped and why.
	Degraded *store.DegradedRestore
}

// Restore restarts a checkpointed CheCL application on node: the CPR
// backend restores the host image, a fresh API proxy is forked, and every
// OpenCL object is recreated in the dependency order of §III-C.
func Restore(node *proc.Node, fs *proc.FS, path string, opts Options) (*CheCL, RestartStats, error) {
	if opts.Backend == nil {
		opts.Backend = cpr.BLCR{}
	}
	stats := RestartStats{PerClass: map[string]vtime.Duration{}}
	total := vtime.NewStopwatch(node.Clock)

	app, rst, err := opts.Backend.Restart(node, fs, path)
	if err != nil {
		return nil, stats, fmt.Errorf("checl: restart: %w", err)
	}
	stats.ReadTime = rst.Time

	c, err := rebuild(node, app, path, opts, &stats)
	if err != nil {
		return nil, stats, err
	}
	stats.Total = total.Elapsed()
	return c, stats, nil
}

// RestoreImage restarts a checkpointed CheCL application from an
// in-memory image instead of a file: the per-rank restore entry point.
// MPI partial restart uses it to revive one failed rank from its own
// segment of a coordinated global snapshot without touching the other
// ranks' bytes. The caller has already charged whatever read cost
// produced the image (e.g. store.GetSegment on the node's clock).
func RestoreImage(node *proc.Node, image []byte, opts Options) (*CheCL, RestartStats, error) {
	if opts.Backend == nil {
		opts.Backend = cpr.BLCR{}
	}
	stats := RestartStats{PerClass: map[string]vtime.Duration{}}
	total := vtime.NewStopwatch(node.Clock)

	app, _, err := cpr.RestartImage(node, image)
	if err != nil {
		return nil, stats, fmt.Errorf("checl: restart: %w", err)
	}

	c, err := rebuild(node, app, "image", opts, &stats)
	if err != nil {
		return nil, stats, err
	}
	stats.Total = total.Elapsed()
	return c, stats, nil
}

// RestoreFromStore is Restore reading from a content-addressed checkpoint
// store instead of a flat file. ref is a manifest ID ("job@seq") or a
// bare job name (its latest checkpoint). If the newest generation cannot
// be restored the walk falls back along the parent chain (healing chunks
// from the store's replicas as it reads); the skipped generations are
// reported in RestartStats.Degraded. When no generation restores, the
// returned error wraps the typed *store.DegradedRestore — the caller
// always learns exactly what was lost, never gets a wrong payload.
func RestoreFromStore(node *proc.Node, st store.Backend, ref string, opts Options) (*CheCL, RestartStats, error) {
	if opts.Backend == nil {
		opts.Backend = cpr.BLCR{}
	}
	sb, ok := opts.Backend.(cpr.StoreBackend)
	if !ok {
		return nil, RestartStats{}, fmt.Errorf("checl: backend %s cannot restart from a store", opts.Backend.Name())
	}
	stats := RestartStats{PerClass: map[string]vtime.Duration{}}
	total := vtime.NewStopwatch(node.Clock)

	app, rst, deg, err := sb.RestartFromStore(node, st, ref)
	stats.Degraded = deg
	if err != nil {
		return nil, stats, fmt.Errorf("checl: restart: %w", err)
	}
	stats.ReadTime = rst.Time

	c, err := rebuild(node, app, ref, opts, &stats)
	if err != nil {
		return nil, stats, err
	}
	stats.Total = total.Elapsed()
	return c, stats, nil
}

// rebuild is the shared Restore tail: decode the object database out of
// the restored image, fork a fresh API proxy, and recreate every OpenCL
// object.
func rebuild(node *proc.Node, app *proc.Process, what string, opts Options, stats *RestartStats) (*CheCL, error) {
	blob := app.Region(dbRegion)
	if blob == nil {
		return nil, fmt.Errorf("checl: checkpoint %q has no CheCL object database", what)
	}
	db, err := decodeDatabase(blob)
	if err != nil {
		return nil, err
	}
	app.RemoveRegion(dbRegion)

	// Reattach per-buffer regions (stripped-database format): each staged
	// buffer travelled as its own region so store checkpoints could dedup
	// it segment-wise. Old images carry the data inline in the database
	// blob and have no such regions — both decode correctly here.
	for _, m := range db.orderedMems() {
		if blob := app.Region(memRegion(m.H)); blob != nil {
			m.Data = append([]byte(nil), blob...)
			app.RemoveRegion(memRegion(m.H))
		}
	}

	vendor, err := selectVendor(node, opts.VendorName)
	if err != nil {
		return nil, err
	}
	c := &CheCL{app: app, opts: opts, db: db}
	px, err := proxy.SpawnWithOptions(app, vendor, c.spawnOpts())
	if err != nil {
		return nil, err
	}
	c.px = px
	rs, err := c.rebindAll()
	if err != nil {
		return nil, err
	}
	for k, v := range rs.PerClass {
		stats.PerClass[k] = v
	}
	stats.Recompile = rs.Recompile
	return c, nil
}

// rebindAll recreates every object in the database via the current proxy,
// in the dependency order of §III-C, and rebinds the real handles hidden
// behind the (unchanged) CheCL handles.
func (c *CheCL) rebindAll() (RestartStats, error) {
	// Every cached info answer described the old binding's hardware.
	c.db.invalidateCaches()

	stats := RestartStats{PerClass: map[string]vtime.Duration{}}
	clock := c.app.Clock()
	api := c.px.Client
	sw := vtime.NewStopwatch(clock)

	// 1) cl_platform_id
	plats, err := api.GetPlatformIDs()
	if err != nil {
		return stats, err
	}
	for _, p := range c.db.platforms {
		info, err := api.GetPlatformInfo(plats[0])
		if err != nil {
			return stats, err
		}
		p.real = plats[0]
		p.Info = info
	}
	stats.PerClass["platform"] = sw.Reset()

	// 2) cl_device_id — with runtime processor selection: each recorded
	// device is remapped onto an available device, preferring the option
	// set in PreferDeviceType, then the original device type.
	devs, err := api.GetDeviceIDs(plats[0], ocl.DeviceTypeAll)
	if err != nil {
		return stats, err
	}
	infos := make([]ocl.DeviceInfo, len(devs))
	for i, d := range devs {
		if infos[i], err = api.GetDeviceInfo(d); err != nil {
			return stats, err
		}
	}
	pick := func(want hw.DeviceType) int {
		if want != 0 {
			for i, inf := range infos {
				if inf.Type == want {
					return i
				}
			}
		}
		return 0
	}
	for _, d := range orderedVals(c.db.devices, func(r *deviceRec) uint64 { return r.Seq }) {
		want := d.Info.Type
		if c.opts.PreferDeviceType != 0 {
			want = c.opts.PreferDeviceType
		}
		i := pick(want)
		d.real = devs[i]
		d.Info = infos[i]
	}
	stats.PerClass["device"] = sw.Reset()

	// 3) cl_context
	for _, ctx := range c.db.orderedContexts() {
		realDevs := make([]ocl.DeviceID, 0, len(ctx.Devices))
		for _, dh := range ctx.Devices {
			drec, err := c.db.device(dh)
			if err != nil {
				return stats, err
			}
			realDevs = append(realDevs, drec.real)
		}
		// Device remapping can alias several recorded devices onto one
		// physical device; contexts must not list duplicates.
		realDevs = dedupeDevices(realDevs)
		real, err := api.CreateContext(realDevs)
		if err != nil {
			return stats, err
		}
		ctx.real = real
	}
	stats.PerClass["context"] = sw.Reset()

	// 4) cl_command_queue
	for _, q := range c.db.orderedQueues() {
		ctx, err := c.db.context(q.Ctx)
		if err != nil {
			return stats, err
		}
		dev, err := c.db.device(q.Device)
		if err != nil {
			return stats, err
		}
		real, err := api.CreateCommandQueue(ctx.real, dev.real, q.Props)
		if err != nil {
			return stats, err
		}
		q.real = real
	}
	stats.PerClass["cmd_que"] = sw.Reset()

	// 5) cl_mem — recreate and send the staged user data back to device
	// memory (the HtoD transfers that dominate Fig. 7 for data-heavy
	// programs).
	for _, m := range c.db.orderedMems() {
		ctx, err := c.db.context(m.Ctx)
		if err != nil {
			return stats, err
		}
		flags := m.Flags &^ (ocl.MemUseHostPtr | ocl.MemCopyHostPtr)
		real, err := api.CreateBuffer(ctx.real, flags, m.Size, nil)
		if err != nil {
			return stats, err
		}
		m.real = real
		if m.Released {
			// Dead record kept only because a kernel argument still names
			// it: a placeholder allocation satisfies the binding, nothing
			// to upload.
			m.Dirty = false
			m.UseHostPtr = false
			m.hostPtr = nil
			continue
		}
		if m.Data != nil {
			q := c.anyQueueFor(m.Ctx)
			if q != nil {
				if _, err := api.EnqueueWriteBuffer(q.real, m.real, true, 0, m.Data, nil); err != nil {
					return stats, err
				}
			}
			if !c.opts.Incremental && !c.shadowOn() {
				m.Data = nil
			}
		}
		m.Dirty = false
		// CL_MEM_USE_HOST_PTR aliasing cannot survive a restart: the
		// original host region belongs to the old incarnation. The buffer
		// continues with copy semantics.
		m.UseHostPtr = false
		m.hostPtr = nil
	}
	stats.PerClass["mem"] = sw.Reset()

	// 6) cl_sampler
	for _, s := range c.db.orderedSamplers() {
		ctx, err := c.db.context(s.Ctx)
		if err != nil {
			return stats, err
		}
		real, err := api.CreateSampler(ctx.real, s.Normalized, s.AMode, s.FMode)
		if err != nil {
			return stats, err
		}
		s.real = real
	}
	stats.PerClass["sampler"] = sw.Reset()

	// 7) cl_program — recreate and recompile; the build time is the Tr of
	// the migration cost model.
	var recompile vtime.Duration
	for _, p := range c.db.orderedPrograms() {
		ctx, err := c.db.context(p.Ctx)
		if err != nil {
			return stats, err
		}
		var real ocl.Program
		if p.FromBinary {
			// Deprecated path (§III-D): the stored binary is only valid
			// on a node with the same vendor implementation.
			someDev := devs[0]
			real, err = api.CreateProgramWithBinary(ctx.real, someDev, p.Binary)
			if err != nil {
				return stats, fmt.Errorf("checl: restoring binary program (clCreateProgramWithBinary is deprecated under CheCL): %w", err)
			}
		} else {
			real, err = api.CreateProgramWithSource(ctx.real, p.Source)
			if err != nil {
				return stats, err
			}
		}
		p.real = real
		if p.Built {
			bsw := vtime.NewStopwatch(clock)
			if err := api.BuildProgram(p.real, p.Options); err != nil {
				return stats, err
			}
			d := bsw.Elapsed()
			recompile += d
			p.BuildCost = d
		}
	}
	stats.PerClass["prog"] = sw.Reset()
	stats.Recompile = recompile

	// 8) cl_kernel — recreate and replay the recorded clSetKernelArg
	// calls, translating CheCL handles to the *new* real handles.
	for _, k := range c.db.orderedKernels() {
		prog, err := c.db.program(k.Prog)
		if err != nil {
			return stats, err
		}
		real, err := api.CreateKernel(prog.real, k.Name)
		if err != nil {
			return stats, err
		}
		k.real = real
		for i, a := range k.Args {
			if !a.Set {
				continue
			}
			forward, _, err := c.translateArg(prog, k.Name, i, a.Size, a.Raw)
			if err != nil {
				return stats, err
			}
			if err := api.SetKernelArg(k.real, i, a.Size, forward); err != nil {
				return stats, err
			}
		}
	}
	stats.PerClass["kernel"] = sw.Reset()

	// 9) cl_event — dummy events via clEnqueueMarker (§III-C): the queues
	// are empty, so the markers complete immediately and can stand in for
	// the completed pre-checkpoint events.
	for _, e := range c.db.orderedEvents() {
		q, err := c.db.queue(e.Queue)
		if err != nil {
			return stats, err
		}
		real, err := api.EnqueueMarker(q.real)
		if err != nil {
			return stats, err
		}
		e.real = real
		e.Dummy = true
	}
	stats.PerClass["event"] = sw.Reset()

	for _, d := range stats.PerClass {
		stats.Total += d
	}
	return stats, nil
}

func dedupeDevices(devs []ocl.DeviceID) []ocl.DeviceID {
	seen := map[ocl.DeviceID]bool{}
	out := devs[:0]
	for _, d := range devs {
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	return out
}

// MigrationStats aggregates the cost of a completed migration.
type MigrationStats struct {
	Checkpoint CheckpointStats
	Restart    RestartStats
	Transfer   vtime.Duration // checkpoint file movement between nodes
	Total      vtime.Duration // Tm: checkpoint + transfer + restart
}

// Migrate checkpoints the application, moves the checkpoint file to the
// target node if the filesystem is not shared, kills the source
// incarnation, and restores on the target (§IV-C). fs must be reachable
// from the source node; if it is the cluster NFS the restore reads it
// directly, otherwise the file is copied over the NIC to the target's
// local disk.
func Migrate(c *CheCL, fs *proc.FS, path string, target *proc.Node, opts Options) (*CheCL, MigrationStats, error) {
	var ms MigrationStats
	src := c.app.Node()

	ckpt, err := c.Checkpoint(fs, path)
	if err != nil {
		return nil, ms, err
	}
	ms.Checkpoint = ckpt

	restoreFS := fs
	if target != src && fs != target.NFS {
		// scp-like transfer: read on the source, push over the NIC,
		// land on the target's local disk.
		data, err := fs.ReadFile(src.Clock, path)
		if err != nil {
			return nil, ms, err
		}
		sw := vtime.NewStopwatch(target.Clock)
		target.Clock.Advance(src.Spec.Inter.NIC.Transfer(int64(len(data))))
		if err := target.LocalDisk.WriteFile(target.Clock, path, data); err != nil {
			return nil, ms, err
		}
		ms.Transfer = sw.Elapsed()
		restoreFS = target.LocalDisk
	}

	// The source incarnation terminates: process migration, not cloning.
	c.px.Kill()
	c.app.Kill()

	nc, rst, err := Restore(target, restoreFS, path, opts)
	if err != nil {
		return nil, ms, err
	}
	ms.Restart = rst
	ms.Total = ckpt.Phases.Total() + ms.Transfer + rst.Total
	return nc, ms, nil
}

// MigrateViaStore migrates like Migrate, but through content-addressed
// stores: the application checkpoints into src (deduplicating against its
// earlier checkpoints), the checkpoint is replicated to dst over the NIC
// (moving only chunks dst is missing — repeated migrations of a
// mostly-unchanged job transfer only the delta), and the application
// restarts on target reading from dst. Pass dst == nil (or dst == src,
// e.g. an NFS-backed store or an erasure-coded fleet both nodes reach) to
// skip replication and restore straight from src. Chunk-level replication
// is a plain-store operation; a fleet already spreads every checkpoint
// across its nodes, so migrating via a fleet uses the shared-store path
// (dst nil or == src), and mixing backend kinds is rejected.
func MigrateViaStore(c *CheCL, src store.Backend, job string, target *proc.Node, dst store.Backend, opts Options) (*CheCL, MigrationStats, error) {
	var ms MigrationStats
	srcNode := c.app.Node()

	ckpt, err := c.CheckpointToStore(src, job)
	if err != nil {
		return nil, ms, err
	}
	// Migration needs the manifest now: barrier on an overlapped write
	// and pick up the retro-filled Manifest/StorePut.
	if err := c.WaitBackgroundWrite(); err != nil {
		return nil, ms, err
	}
	if ckpt.Manifest == "" {
		if lc := c.lastCkpt; lc != nil {
			ckpt.Manifest = lc.Manifest
			ckpt.StorePut = lc.StorePut
			ckpt.Overlap = lc.Overlap
		}
	}
	ms.Checkpoint = ckpt

	restoreStore := src
	if dst != nil && dst != src {
		srcStore, sok := src.(*store.Store)
		dstStore, dok := dst.(*store.Store)
		if !sok || !dok {
			return nil, ms, fmt.Errorf("checl: migrate via store: replication needs plain stores on both sides (src %s, dst %s) — a fleet is shared, pass dst == src", src.Name(), dst.Name())
		}
		sw := vtime.NewStopwatch(target.Clock)
		if _, _, err := srcStore.Replicate(target.Clock, ckpt.Manifest, dstStore, srcNode.Spec.Inter.NIC); err != nil {
			return nil, ms, err
		}
		ms.Transfer = sw.Elapsed()
		restoreStore = dst
	}

	// The source incarnation terminates: process migration, not cloning.
	c.px.Kill()
	c.app.Kill()

	nc, rst, err := RestoreFromStore(target, restoreStore, ckpt.Manifest, opts)
	if err != nil {
		return nil, ms, err
	}
	ms.Restart = rst
	ms.Total = ckpt.Phases.Total() + ms.Transfer + rst.Total
	return nc, ms, nil
}

// SelectProcessor re-targets a *running* CheCL application onto a
// different compute device kind on the same node (runtime processor
// selection, §IV-C): a checkpoint is taken on the RAM disk, the current
// incarnation is torn down, and the application restarts preferring the
// requested device type.
func SelectProcessor(c *CheCL, want hw.DeviceType) (*CheCL, MigrationStats, error) {
	node := c.app.Node()
	opts := c.opts
	opts.PreferDeviceType = want
	return Migrate(c, node.RAMDisk, "procsel.ckpt", node, opts)
}
