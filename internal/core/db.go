// Package core implements CheCL itself — the paper's contribution. It is a
// transparent interposition layer that implements the same ocl.API surface
// an application would use against a vendor runtime, but:
//
//   - forwards every call to an API proxy process (internal/proxy), so the
//     application process never acquires device mappings and stays
//     checkpointable by a conventional CPR system (internal/cpr);
//   - hands the application *CheCL handles* instead of real OpenCL handles
//     and records, per object, everything needed to recreate it (§III-B);
//   - parses every kernel's OpenCL C parameter list so clSetKernelArg
//     arguments carrying handles are recognised and translated;
//   - checkpoints in four phases (sync, preprocess, write, postprocess)
//     and restores objects in dependency order with dummy events minted by
//     clEnqueueMarker (§III-C);
//   - migrates processes across nodes, vendors and device kinds, and
//     predicts the migration cost with Tm = α·M + Tr + β (§IV-C).
package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"

	"checl/internal/clc"
	"checl/internal/ocl"
	"checl/internal/vtime"
)

// Handle is a CheCL handle: the opaque value the application sees instead
// of a real OpenCL handle. Its value is stable across checkpoint/restart —
// the real handle behind it is silently rebound.
type Handle uint64

// handle class tags (low nibble of every CheCL handle).
const (
	hPlatform = iota + 1
	hDevice
	hContext
	hQueue
	hMem
	hSampler
	hProgram
	hKernel
	hEvent
)

var classNames = map[int]string{
	hPlatform: "platform",
	hDevice:   "device",
	hContext:  "context",
	hQueue:    "cmd_que",
	hMem:      "mem",
	hSampler:  "sampler",
	hProgram:  "prog",
	hKernel:   "kernel",
	hEvent:    "event",
}

// RestoreOrder is the dependency-ordered class list of §III-C: objects are
// restored in this order and deleted in reverse.
var RestoreOrder = []string{
	"platform", "device", "context", "cmd_que", "mem", "sampler", "prog", "kernel", "event",
}

func (h Handle) class() int { return int(h & 0xF) }

// Class names the object class of the handle ("mem", "prog", ...).
func (h Handle) Class() string { return classNames[h.class()] }

// CheCL-handle values live in a distinctive range so that accidental
// confusion with real handles is detectable in tests and so the
// address-based heuristic for binary programs (§III-D) has something to
// match against.
const handleBase = 0x00c4ec1d0000

// database holds every CheCL object, keyed by CheCL handle. It is the
// "database managed to hold the pointers to all CheCL objects" of §III-C.
// All access is serialised by the owning CheCL's mutex.
type database struct {
	seq uint64

	platforms map[Handle]*platformRec
	devices   map[Handle]*deviceRec
	contexts  map[Handle]*contextRec
	queues    map[Handle]*queueRec
	mems      map[Handle]*memRec
	samplers  map[Handle]*samplerRec
	programs  map[Handle]*programRec
	kernels   map[Handle]*kernelRec
	events    map[Handle]*eventRec

	// Immutable-info caches: answers to queries that cannot change while
	// the current real-handle binding lives. They are transient by
	// construction (unexported, so never serialised into a checkpoint)
	// and invalidateCaches drops them whenever the binding changes — a
	// restart, a failover rebind, a destructive checkpoint, a processor
	// re-selection — so a stale answer from dead hardware is never served.
	platformList []ocl.PlatformID
	deviceLists  map[deviceListKey][]ocl.DeviceID
	buildInfo    map[buildInfoKey]ocl.BuildInfo
	wgInfo       map[wgInfoKey]ocl.KernelWorkGroupInfo
	cacheGen     uint64 // bumped by every invalidation
	cacheHits    uint64 // round trips avoided
}

type deviceListKey struct {
	platform Handle
	mask     ocl.DeviceTypeMask
}

type buildInfoKey struct{ prog, dev Handle }

type wgInfoKey struct{ kernel, dev Handle }

// invalidateCaches drops every immutable-info cache. Called whenever
// real handles are rebound: the cached answers described the old
// binding's hardware.
func (db *database) invalidateCaches() {
	db.platformList = nil
	db.deviceLists = nil
	db.buildInfo = nil
	db.wgInfo = nil
	db.cacheGen++
}

func newDatabase() *database {
	return &database{
		platforms: map[Handle]*platformRec{},
		devices:   map[Handle]*deviceRec{},
		contexts:  map[Handle]*contextRec{},
		queues:    map[Handle]*queueRec{},
		mems:      map[Handle]*memRec{},
		samplers:  map[Handle]*samplerRec{},
		programs:  map[Handle]*programRec{},
		kernels:   map[Handle]*kernelRec{},
		events:    map[Handle]*eventRec{},
	}
}

func (db *database) newHandle(tag int) Handle {
	db.seq++
	return Handle(handleBase | db.seq<<4 | uint64(tag))
}

// Record types: one per OpenCL object class. Every record keeps the
// creation arguments in *CheCL handle space* (stable across restart) plus
// the current real handle (rebound on restart). Exported fields are
// serialised into the checkpoint image.

type platformRec struct {
	H    Handle
	Seq  uint64
	real ocl.PlatformID
	Info ocl.PlatformInfo
}

type deviceRec struct {
	H        Handle
	Seq      uint64
	Platform Handle
	real     ocl.DeviceID
	Info     ocl.DeviceInfo
}

type contextRec struct {
	H       Handle
	Seq     uint64
	Devices []Handle
	Refs    int
	real    ocl.Context
}

type queueRec struct {
	H      Handle
	Seq    uint64
	Ctx    Handle
	Device Handle
	Props  ocl.QueueProps
	Refs   int
	real   ocl.CommandQueue
}

type memRec struct {
	H          Handle
	Seq        uint64
	Ctx        Handle
	Flags      ocl.MemFlags
	Size       int64
	Refs       int
	Data       []byte // staged device contents (preprocess phase)
	Dirty      bool   // may differ from Data (incremental mode)
	UseHostPtr bool
	Released   bool // refcount hit zero but a live kernel still binds it
	real       ocl.Mem
	hostPtr    []byte // app-side region for CL_MEM_USE_HOST_PTR
}

type samplerRec struct {
	H          Handle
	Seq        uint64
	Ctx        Handle
	Normalized bool
	AMode      ocl.AddressingMode
	FMode      ocl.FilterMode
	Refs       int
	real       ocl.Sampler
}

type programRec struct {
	H          Handle
	Seq        uint64
	Ctx        Handle
	Source     string
	Binary     []byte // as passed to clCreateProgramWithBinary (deprecated path)
	FromBinary bool
	Built      bool
	Options    string
	Sigs       []clc.KernelSig
	WriteSets  writeSets // kernel -> indices of params it may write
	Refs       int
	BuildCost  vtime.Duration // measured build time (input to Tr prediction)
	real       ocl.Program
}

// writeSets maps kernel name -> indices of params the kernel may write.
// Plain gob map encoding is iteration-ordered (random), which would make
// two encodings of an unchanged database differ and defeat the checkpoint
// store's content-defined dedup — so it gob-encodes as a key-sorted list.
type writeSets map[string][]int

type writeSetEntry struct {
	Name string
	Idx  []int
}

// GobEncode implements gob.GobEncoder deterministically.
func (w writeSets) GobEncode() ([]byte, error) {
	entries := make([]writeSetEntry, 0, len(w))
	for name, idx := range w {
		entries = append(entries, writeSetEntry{Name: name, Idx: idx})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(entries); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (w *writeSets) GobDecode(data []byte) error {
	var entries []writeSetEntry
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&entries); err != nil {
		return err
	}
	*w = writeSets{}
	for _, e := range entries {
		(*w)[e.Name] = e.Idx
	}
	return nil
}

type argRec struct {
	Set   bool
	Size  int64
	Raw   []byte // bytes exactly as the application passed them (CheCL space)
	Local bool
}

type kernelRec struct {
	H    Handle
	Seq  uint64
	Prog Handle
	Name string
	Args []argRec
	Refs int
	real ocl.Kernel
}

type eventRec struct {
	H     Handle
	Seq   uint64
	Queue Handle
	Kind  string
	Refs  int
	Dummy bool // re-minted via clEnqueueMarker after restart
	real  ocl.Event
}

// lookups with class-checked errors.

func (db *database) platform(h Handle) (*platformRec, error) {
	if r, ok := db.platforms[h]; ok {
		return r, nil
	}
	return nil, ocl.Errf("CheCL", ocl.InvalidPlatform, "%#x is not a live CheCL platform handle", uint64(h))
}

func (db *database) device(h Handle) (*deviceRec, error) {
	if r, ok := db.devices[h]; ok {
		return r, nil
	}
	return nil, ocl.Errf("CheCL", ocl.InvalidDevice, "%#x is not a live CheCL device handle", uint64(h))
}

func (db *database) context(h Handle) (*contextRec, error) {
	if r, ok := db.contexts[h]; ok {
		return r, nil
	}
	return nil, ocl.Errf("CheCL", ocl.InvalidContext, "%#x is not a live CheCL context handle", uint64(h))
}

func (db *database) queue(h Handle) (*queueRec, error) {
	if r, ok := db.queues[h]; ok {
		return r, nil
	}
	return nil, ocl.Errf("CheCL", ocl.InvalidCommandQueue, "%#x is not a live CheCL queue handle", uint64(h))
}

func (db *database) mem(h Handle) (*memRec, error) {
	if r, ok := db.mems[h]; ok && !r.Released {
		return r, nil
	}
	return nil, ocl.Errf("CheCL", ocl.InvalidMemObject, "%#x is not a live CheCL mem handle", uint64(h))
}

// memAny is mem including dead (Released) records: the restore-time
// clSetKernelArg replay must still resolve a handle a kernel captured
// before the application dropped its last reference.
func (db *database) memAny(h Handle) (*memRec, error) {
	if r, ok := db.mems[h]; ok {
		return r, nil
	}
	return nil, ocl.Errf("CheCL", ocl.InvalidMemObject, "%#x is not a live CheCL mem handle", uint64(h))
}

func (db *database) sampler(h Handle) (*samplerRec, error) {
	if r, ok := db.samplers[h]; ok {
		return r, nil
	}
	return nil, ocl.Errf("CheCL", ocl.InvalidSampler, "%#x is not a live CheCL sampler handle", uint64(h))
}

func (db *database) program(h Handle) (*programRec, error) {
	if r, ok := db.programs[h]; ok {
		return r, nil
	}
	return nil, ocl.Errf("CheCL", ocl.InvalidProgram, "%#x is not a live CheCL program handle", uint64(h))
}

func (db *database) kernel(h Handle) (*kernelRec, error) {
	if r, ok := db.kernels[h]; ok {
		return r, nil
	}
	return nil, ocl.Errf("CheCL", ocl.InvalidKernel, "%#x is not a live CheCL kernel handle", uint64(h))
}

func (db *database) event(h Handle) (*eventRec, error) {
	if r, ok := db.events[h]; ok {
		return r, nil
	}
	return nil, ocl.Errf("CheCL", ocl.InvalidEvent, "%#x is not a live CheCL event handle", uint64(h))
}

// ordered iteration helpers (creation order = Seq order), so restore
// replays creations deterministically and parents exist before children.

func orderedVals[R any](m map[Handle]*R, seq func(*R) uint64) []*R {
	out := make([]*R, 0, len(m))
	for _, r := range m {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return seq(out[i]) < seq(out[j]) })
	return out
}

func (db *database) orderedContexts() []*contextRec {
	return orderedVals(db.contexts, func(r *contextRec) uint64 { return r.Seq })
}
func (db *database) orderedQueues() []*queueRec {
	return orderedVals(db.queues, func(r *queueRec) uint64 { return r.Seq })
}
func (db *database) orderedMems() []*memRec {
	return orderedVals(db.mems, func(r *memRec) uint64 { return r.Seq })
}
func (db *database) orderedSamplers() []*samplerRec {
	return orderedVals(db.samplers, func(r *samplerRec) uint64 { return r.Seq })
}
func (db *database) orderedPrograms() []*programRec {
	return orderedVals(db.programs, func(r *programRec) uint64 { return r.Seq })
}
func (db *database) orderedKernels() []*kernelRec {
	return orderedVals(db.kernels, func(r *kernelRec) uint64 { return r.Seq })
}
func (db *database) orderedEvents() []*eventRec {
	return orderedVals(db.events, func(r *eventRec) uint64 { return r.Seq })
}

// Counts reports live objects per class (diagnostics and tests).
func (db *database) Counts() map[string]int {
	// Dead (Released) mem records stay in the map only so kernel-arg
	// replay can resolve them after a restore; the application-visible
	// count excludes them.
	liveMems := 0
	for _, m := range db.mems {
		if !m.Released {
			liveMems++
		}
	}
	return map[string]int{
		"platform": len(db.platforms),
		"device":   len(db.devices),
		"context":  len(db.contexts),
		"cmd_que":  len(db.queues),
		"mem":      liveMems,
		"sampler":  len(db.samplers),
		"prog":     len(db.programs),
		"kernel":   len(db.kernels),
		"event":    len(db.events),
	}
}

// snapshot is the serialisable form of the database stored in the
// application process's "checl.db" memory region at checkpoint time.
type snapshot struct {
	Seq       uint64
	Platforms []platformRec
	Devices   []deviceRec
	Contexts  []contextRec
	Queues    []queueRec
	Mems      []memRec
	Samplers  []samplerRec
	Programs  []programRec
	Kernels   []kernelRec
	Events    []eventRec
}

// encode serialises the database, staged buffer contents included.
func (db *database) encode() ([]byte, error) { return db.encodeWith(false) }

// encodeStripped serialises the database with every mem record's staged
// Data nil'd out: the dump path stores each buffer's bytes as its own
// process memory region (one store segment per buffer), so the contents
// must not also ride inside the database blob — that would defeat the
// per-buffer clean-segment reuse and double the image size.
func (db *database) encodeStripped() ([]byte, error) { return db.encodeWith(true) }

func (db *database) encodeWith(stripData bool) ([]byte, error) {
	var s snapshot
	s.Seq = db.seq
	for _, r := range orderedVals(db.platforms, func(r *platformRec) uint64 { return r.Seq }) {
		s.Platforms = append(s.Platforms, *r)
	}
	for _, r := range orderedVals(db.devices, func(r *deviceRec) uint64 { return r.Seq }) {
		s.Devices = append(s.Devices, *r)
	}
	for _, r := range db.orderedContexts() {
		s.Contexts = append(s.Contexts, *r)
	}
	for _, r := range db.orderedQueues() {
		s.Queues = append(s.Queues, *r)
	}
	for _, r := range db.orderedMems() {
		rec := *r
		if stripData {
			rec.Data = nil
		}
		s.Mems = append(s.Mems, rec)
	}
	for _, r := range db.orderedSamplers() {
		s.Samplers = append(s.Samplers, *r)
	}
	for _, r := range db.orderedPrograms() {
		s.Programs = append(s.Programs, *r)
	}
	for _, r := range db.orderedKernels() {
		s.Kernels = append(s.Kernels, *r)
	}
	for _, r := range db.orderedEvents() {
		s.Events = append(s.Events, *r)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		return nil, fmt.Errorf("checl: encoding object database: %w", err)
	}
	return buf.Bytes(), nil
}

// decodeDatabase reconstructs a database (real handles unbound) from a
// serialised snapshot.
func decodeDatabase(data []byte) (*database, error) {
	var s snapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&s); err != nil {
		return nil, fmt.Errorf("checl: decoding object database: %w", err)
	}
	db := newDatabase()
	db.seq = s.Seq
	for i := range s.Platforms {
		r := s.Platforms[i]
		db.platforms[r.H] = &r
	}
	for i := range s.Devices {
		r := s.Devices[i]
		db.devices[r.H] = &r
	}
	for i := range s.Contexts {
		r := s.Contexts[i]
		db.contexts[r.H] = &r
	}
	for i := range s.Queues {
		r := s.Queues[i]
		db.queues[r.H] = &r
	}
	for i := range s.Mems {
		r := s.Mems[i]
		db.mems[r.H] = &r
	}
	for i := range s.Samplers {
		r := s.Samplers[i]
		db.samplers[r.H] = &r
	}
	for i := range s.Programs {
		r := s.Programs[i]
		db.programs[r.H] = &r
	}
	for i := range s.Kernels {
		r := s.Kernels[i]
		db.kernels[r.H] = &r
	}
	for i := range s.Events {
		r := s.Events[i]
		db.events[r.H] = &r
	}
	return db, nil
}

// liveObjects totals live objects across every class.
func (db *database) liveObjects() int {
	n := 0
	for _, v := range db.Counts() {
		n += v
	}
	return n
}
