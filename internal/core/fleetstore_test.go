package core

import (
	"fmt"
	"testing"

	"checl/internal/apps"
	"checl/internal/hw"
	"checl/internal/ocl"
	"checl/internal/proc"
	"checl/internal/store"
)

// newTestFleet builds a 6-node 4+2 erasure-coded checkpoint fleet with
// per-node states attached so the tests can take nodes down.
func newTestFleet(t *testing.T) (*store.Fleet, map[string]*proc.NodeState) {
	t.Helper()
	nodes := make([]store.FleetNode, 6)
	states := map[string]*proc.NodeState{}
	for i := range nodes {
		name := fmt.Sprintf("ck-%02d", i)
		fs := proc.NewFS(name, hw.TableISpec().LocalDisk)
		ns := proc.NewNodeState(name)
		fs.SetNodeState(ns)
		nodes[i] = store.FleetNode{Name: name, FS: fs}
		states[name] = ns
	}
	fl, err := store.NewFleet(nodes, store.FleetConfig{Store: fineChunks})
	if err != nil {
		t.Fatal(err)
	}
	return fl, states
}

// lossSubsets enumerates every subset of up to m=2 of the 6 node names.
func lossSubsets(names []string) [][]string {
	var out [][]string
	for i := range names {
		out = append(out, []string{names[i]})
	}
	for i := range names {
		for j := i + 1; j < len(names); j++ {
			out = append(out, []string{names[i], names[j]})
		}
	}
	return out
}

// TestFleetStoreAppsDegradedBitIdentical is the node-loss acceptance
// soak: every benchmark app checkpoints into the erasure-coded fleet and
// restores bit-identical with store nodes down. The first app sweeps
// every loss pattern up to m; the rest rotate through the patterns so
// the whole space stays covered across the suite without repeating the
// full sweep per app.
func TestFleetStoreAppsDegradedBitIdentical(t *testing.T) {
	fl, states := newTestFleet(t)
	subsets := lossSubsets(fl.Nodes())
	allUp := func() {
		for _, ns := range states {
			ns.SetDown(false)
		}
	}

	for ai, a := range apps.All() {
		ai, a := ai, a
		t.Run(a.Name, func(t *testing.T) {
			node := newNodeNV(fmt.Sprintf("src-%d", ai))
			app := node.Spawn(a.Name)
			c, err := Attach(app, Options{Incremental: true})
			if err != nil {
				t.Fatal(err)
			}
			env := &apps.Env{API: c, DeviceMask: ocl.DeviceTypeGPU, Scale: 0.2}
			if _, err := a.Run(env); err != nil {
				t.Fatalf("%s: %v", a.Name, err)
			}
			want := memDigests(t, c)
			ck, err := c.CheckpointToStore(fl, a.Name)
			if err != nil {
				t.Fatalf("checkpoint into fleet: %v", err)
			}
			if ck.FSName != fl.Name() {
				t.Fatalf("checkpoint recorded destination %q, want %q", ck.FSName, fl.Name())
			}
			c.App().Kill()
			c.Detach()

			picks := subsets
			if ai > 0 {
				picks = [][]string{
					subsets[ai%len(subsets)],
					subsets[(ai*7+3)%len(subsets)],
				}
			}
			for si, down := range picks {
				allUp()
				for _, name := range down {
					states[name].SetDown(true)
				}
				tgt := newNodeNV(fmt.Sprintf("tgt-%d-%d", ai, si))
				c2, rst, err := RestoreFromStore(tgt, fl, a.Name, Options{Incremental: true})
				if err != nil {
					t.Fatalf("restore with %v down: %v", down, err)
				}
				if rst.Degraded != nil {
					t.Fatalf("restore with %v down fell back a generation: %v", down, rst.Degraded)
				}
				got := memDigests(t, c2)
				if len(got) != len(want) {
					t.Fatalf("down=%v: buffer count %d, want %d", down, len(got), len(want))
				}
				for h, w := range want {
					if got[h] != w {
						t.Fatalf("down=%v: buffer %v diverged", down, h)
					}
				}
				c2.App().Kill()
				c2.Detach()
			}
			allUp()
		})
	}
}
