package core

// Async enqueue batching: the app→proxy hot path pipelined. With
// Options.BatchEnqueues, fire-and-forget calls — clSetKernelArg, the
// clEnqueue* family, clFlush/clFinish — do not pay a synchronous IPC
// round trip each. They are recorded as pending commands and coalesced
// into one clEnqueueBatch frame, flushed at the next synchronisation
// point: clFinish, any read (its data must come back), clWaitForEvents,
// a blocking write, an object release, or a checkpoint drain.
//
// OpenCL's error-reporting semantics survive batching the same way they
// survive a real out-of-order device: an enqueue may return CL_SUCCESS
// and fail later; the failure then surfaces at a synchronisation point.
// Here a failing batched command surfaces at the flush as a *BatchError
// naming the originating entry point and its position in the batch.
// Commands after the failure were never executed; their events stay
// unbound (real handle zero) and are skipped by wait-list translation.
//
// The PR-2 crash machinery keeps working per batch: clEnqueueBatch is a
// sequenced (non-idempotent) call, so a connection crash mid-flush
// either retries the whole frame (answered from the server's dedupe
// cache if the first delivery executed) or fails over, rebinds every
// object, and re-runs the translation closure against the fresh real
// handles. Pending commands hold record pointers, never raw handles, so
// a post-failover retry re-reads the rebound handles naturally.

import (
	"fmt"

	"checl/internal/ocl"
	"checl/internal/proxy"
)

// Batch growth caps: a batch that hits either bound is flushed before
// the next command is deferred, so one flush frame stays bounded.
const (
	maxBatchCmds  = 256
	maxBatchBytes = 8 << 20
)

// pendingCmd is one deferred command. It references database records by
// pointer — real handles are read only inside the flush closure, so a
// failover rebind between defer and flush is transparent.
type pendingCmd struct {
	op     proxy.BatchOp
	method string // OpenCL entry point, for deferred-error attribution

	q    *queueRec
	k    *kernelRec
	prog *programRec
	mem  *memRec
	src  *memRec
	dst  *memRec

	argIndex int    // SetArg
	argSize  int64  // SetArg
	argRaw   []byte // SetArg: bytes as the app passed them (CheCL space)

	blocking               bool
	offset, srcOff, dstOff int64
	size                   int64
	data                   []byte // write payload (private copy)

	dims                int
	goff, global, local [3]int

	waits []Handle  // CheCL event handles, validated at defer time
	ev    *eventRec // pre-minted result event; nil for ops without one

	shadowInto *memRec // ShadowFull readback: copy the read data here
	termRead   bool    // the application's own read; its data is returned
}

// BatchError is the deferred error of a batched command, delivered at
// the flush (the next synchronisation point after the failing call).
type BatchError struct {
	Method string // entry point of the failing call, e.g. "clEnqueueWriteBuffer"
	Index  int    // position within the flushed batch
	Err    error
}

func (e *BatchError) Error() string {
	return fmt.Sprintf("checl: deferred %s (batched command %d): %v", e.Method, e.Index, e.Err)
}

func (e *BatchError) Unwrap() error { return e.Err }

// batching reports whether enqueue batching is active.
func (c *CheCL) batching() bool { return c.opts.BatchEnqueues }

// PendingBatch reports how many commands are currently deferred
// (diagnostics and tests).
func (c *CheCL) PendingBatch() int { return len(c.batch) }

// Drain flushes every deferred command and settles posted transport
// submissions, delivering any pending deferred error. It is the explicit
// synchronisation point tools and tests use before inspecting proxy-side
// state directly.
func (c *CheCL) Drain() error {
	if err := c.flushBatch(); err != nil {
		return err
	}
	return c.forward("SettlePosted", func(api *proxy.Client) error {
		return api.SettlePosted()
	})
}

// pendingEvent mints the CheCL event a deferred command will complete.
// Its real handle stays zero until the flush binds it.
func (c *CheCL) pendingEvent(q Handle, kind string) *eventRec {
	rec := &eventRec{H: c.db.newHandle(hEvent), Seq: c.db.seq, Queue: q, Kind: kind, Refs: 1}
	c.db.events[rec.H] = rec
	return rec
}

// waitHandles validates a wait list eagerly (invalid handles must fail
// at the call, not at the flush) and pins the CheCL handles.
func (c *CheCL) waitHandles(waits []ocl.Event) ([]Handle, error) {
	if len(waits) == 0 {
		return nil, nil
	}
	out := make([]Handle, len(waits))
	for i, w := range waits {
		rec, err := c.db.event(Handle(w))
		if err != nil {
			return nil, err
		}
		out[i] = rec.H
	}
	return out, nil
}

// deferCmd appends one command to the batch, flushing first if adding
// it would exceed the size caps. A deferred error from that capacity
// flush surfaces here, attributed via *BatchError to the call that
// originally failed.
func (c *CheCL) deferCmd(pc *pendingCmd) error {
	if len(c.batch) >= maxBatchCmds || c.batchBytes+int64(len(pc.data)) > maxBatchBytes {
		if err := c.flushBatch(); err != nil {
			return err
		}
	}
	c.batch = append(c.batch, pc)
	c.batchBytes += int64(len(pc.data))
	return nil
}

// flushBatch ships the deferred commands; any terminal read data is
// discarded (used by sync points that are not themselves reads).
func (c *CheCL) flushBatch() error {
	_, err := c.flushBatchData()
	return err
}

// flushBatchData ships every deferred command as one clEnqueueBatch
// call and distributes the results: pre-minted events are bound to the
// real events the server returned, ShadowFull readbacks are copied into
// their shadows, and the terminal read's data (if the flush point is a
// read) is returned. A failing batched command comes back as a
// *BatchError; the commands after it were not executed and their events
// stay unbound.
func (c *CheCL) flushBatchData() ([]byte, error) {
	if len(c.batch) == 0 {
		return nil, nil
	}
	// Consume the batch up front: a flush is a one-shot delivery, and a
	// re-entrant flush (checkpoint triggered at the sync point) must see
	// an empty batch.
	cmds := c.batch
	c.batch = nil
	c.batchBytes = 0

	// The write payload frame is position-independent: build it once.
	var payload []byte
	offs := make([]int64, len(cmds))
	for i, pc := range cmds {
		if pc.op == proxy.BatchWrite {
			offs[i] = int64(len(payload))
			payload = append(payload, pc.data...)
		}
	}

	// In-batch event dependencies resolve by command index, taking
	// precedence over any real handle a failover rebind minted meanwhile.
	idxOf := make(map[*eventRec]int, len(cmds))
	for i, pc := range cmds {
		if pc.ev != nil {
			idxOf[pc.ev] = i
		}
	}

	var (
		resp proxy.EnqueueBatchResp
		raw  []byte
	)
	err := c.forward("clEnqueueBatch", func(api *proxy.Client) error {
		// Translation happens inside the retry closure: after a failover
		// the records carry fresh real handles, and the whole batch
		// re-translates and re-ships as one atomic unit.
		bcmds := make([]proxy.BatchCmd, len(cmds))
		for i, pc := range cmds {
			bc := proxy.BatchCmd{Op: pc.op}
			for _, wh := range pc.waits {
				rec, err := c.db.event(wh)
				if err != nil {
					return err
				}
				if j, ok := idxOf[rec]; ok {
					bc.WaitIdx = append(bc.WaitIdx, j)
					continue
				}
				if rec.real == 0 {
					// A previously failed batched command: nothing to wait on.
					continue
				}
				bc.Waits = append(bc.Waits, rec.real)
			}
			switch pc.op {
			case proxy.BatchSetArg:
				fwd, _, err := c.translateArg(pc.prog, pc.k.Name, pc.argIndex, pc.argSize, pc.argRaw)
				if err != nil {
					return err
				}
				bc.Kernel = pc.k.real
				bc.Index = pc.argIndex
				bc.ArgSize = pc.argSize
				bc.Value = fwd
			case proxy.BatchWrite:
				bc.Queue = pc.q.real
				bc.Mem = pc.mem.real
				bc.Blocking = pc.blocking
				bc.Offset = pc.offset
				bc.PayloadOff = offs[i]
				bc.PayloadLen = int64(len(pc.data))
			case proxy.BatchRead:
				bc.Queue = pc.q.real
				bc.Mem = pc.mem.real
				bc.Blocking = true
				bc.Offset = pc.offset
				bc.Size = pc.size
			case proxy.BatchCopy:
				bc.Queue = pc.q.real
				bc.Src = pc.src.real
				bc.Dst = pc.dst.real
				bc.SrcOff = pc.srcOff
				bc.DstOff = pc.dstOff
				bc.Size = pc.size
			case proxy.BatchNDRange:
				bc.Queue = pc.q.real
				bc.Kernel = pc.k.real
				bc.Dims = pc.dims
				bc.GOff = pc.goff
				bc.Global = pc.global
				bc.Local = pc.local
			default: // marker, barrier, flush, finish
				bc.Queue = pc.q.real
			}
			bcmds[i] = bc
		}
		var e error
		resp, raw, e = api.EnqueueBatch(bcmds, payload)
		return e
	})
	if err != nil {
		// Transport-level failure after exhausted recovery: nothing
		// executed that we can observe. The pre-minted events stay
		// unbound so wait-list translation skips them.
		for _, pc := range cmds {
			if pc.ev != nil {
				pc.ev.Dummy = true
			}
		}
		return nil, err
	}

	var (
		rawOff   int
		termData []byte
	)
	for i, pc := range cmds {
		if resp.ErrIdx >= 0 && i >= resp.ErrIdx {
			// The failing command and everything after it never ran.
			if pc.ev != nil {
				pc.ev.Dummy = true
			}
			continue
		}
		if pc.ev != nil && i < len(resp.Events) {
			pc.ev.real = resp.Events[i]
			pc.ev.Dummy = false
		}
		if pc.op == proxy.BatchRead && i < len(resp.ReadLens) {
			n := int(resp.ReadLens[i])
			if rawOff+n > len(raw) {
				n = len(raw) - rawOff
			}
			chunk := raw[rawOff : rawOff+n]
			rawOff += n
			if pc.shadowInto != nil {
				// The raw frame is shared by every read of the batch:
				// shadows take a copy, never a view.
				copy(shadow(pc.shadowInto), chunk)
			}
			if pc.termRead {
				termData = chunk
			}
		}
	}
	if resp.ErrIdx >= 0 && resp.ErrIdx < len(cmds) {
		op := resp.ErrOp
		if op == "" {
			op = cmds[resp.ErrIdx].method
		}
		return termData, &BatchError{
			Method: cmds[resp.ErrIdx].method,
			Index:  resp.ErrIdx,
			Err:    ocl.Errf(op, ocl.Status(resp.ErrStatus), "%s", resp.ErrDetail),
		}
	}
	return termData, nil
}
