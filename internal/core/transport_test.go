package core

// Transport parity: the ring transport must be observationally identical
// to the framed stream. Every benchmark app runs on both transports,
// clean and under the same seeded kill plans, and the final buffer
// contents must be bit-identical across all arms. The framed stream is
// the reference (and the fault-injection workhorse); the ring is the
// hot-path optimisation and must never change results.

import (
	"testing"

	"checl/internal/apps"
	"checl/internal/ipc"
	"checl/internal/ocl"
	"checl/internal/proxy"
)

// runAppOn runs one benchmark app under CheCL on the given transport and
// returns the digest of every live buffer plus the proxy client stats of
// the (final) proxy.
func runAppOn(t *testing.T, a apps.App, scale float64, inj *ipc.FaultInjector, batch bool, tr proxy.Transport) (map[Handle]string, proxy.Stats) {
	t.Helper()
	node := newNodeNV("pc0")
	app := node.Spawn(a.Name)
	opts := Options{
		AutoFailover:  true,
		Shadow:        ShadowFull,
		Fault:         inj,
		BatchEnqueues: batch,
		Transport:     tr,
	}
	c, err := Attach(app, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Detach()
	env := &apps.Env{API: c, DeviceMask: ocl.DeviceTypeGPU, Scale: scale}
	if _, err := a.Run(env); err != nil {
		t.Fatalf("%s on %v: %v", a.Name, tr, err)
	}
	digests := memDigests(t, c)
	return digests, c.Proxy().Client.Stats()
}

// ringKillPlan is faultKillPlan extended with the ring-specific fault
// points (torn slot publish, stalled consumer, arena poison). On the
// framed stream those kinds are inert; on the ring they land at the
// analogous protocol positions.
func ringKillPlan(seed uint64, everyN int) ipc.FaultPlan {
	p := faultKillPlan(seed, everyN)
	p.Kinds = append(append([]ipc.FaultKind(nil), p.Kinds...), ipc.RingFaultKinds...)
	return p
}

func diffDigests(t *testing.T, arm string, want, got map[Handle]string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: object count diverged: %d vs %d", arm, len(want), len(got))
	}
	for h, w := range want {
		if g, ok := got[h]; !ok {
			t.Errorf("%s: buffer %v missing", arm, h)
		} else if g != w {
			t.Errorf("%s: buffer %v contents diverged: %s vs %s", arm, h, g, w)
		}
	}
}

// TestTransportParitySoak is the ring acceptance soak: every benchmark
// app, batched and unbatched, on both transports, clean and under the
// same seeded kill-every-K + proxy-crash plan. All arms must produce
// bit-identical buffer contents, and the clean runs must agree on the
// call-level stats (same Calls, same Batched commands — only Posted and
// wire Bytes may differ, because the ring posts enqueue-class calls and
// models slot/arena traffic instead of gob frames).
func TestTransportParitySoak(t *testing.T) {
	scale := 0.2
	everyN := 40
	if testing.Short() {
		everyN = 80
	}
	for _, batch := range []bool{false, true} {
		batch := batch
		name := "unbatched"
		if batch {
			name = "batched"
		}
		t.Run(name, func(t *testing.T) {
			var totalPosted int64
			for _, a := range apps.All() {
				a := a
				t.Run(a.Name, func(t *testing.T) {
					ref, fstats := runAppOn(t, a, scale, nil, batch, proxy.TransportPipe)

					ringClean, rstats := runAppOn(t, a, scale, nil, batch, proxy.TransportRing)
					diffDigests(t, "ring-clean", ref, ringClean)
					if fstats.Calls != rstats.Calls {
						t.Errorf("clean Calls diverged: framed=%d ring=%d", fstats.Calls, rstats.Calls)
					}
					if fstats.Batched != rstats.Batched {
						t.Errorf("clean Batched diverged: framed=%d ring=%d", fstats.Batched, rstats.Batched)
					}
					if fstats.Posted != 0 {
						t.Errorf("framed transport posted %d calls; posting is ring-only", fstats.Posted)
					}
					totalPosted += rstats.Posted

					inj := ipc.NewFaultInjector(faultKillPlan(2026, everyN))
					framedFaulted, _ := runAppOn(t, a, scale, inj, batch, proxy.TransportPipe)
					diffDigests(t, "framed-faulted", ref, framedFaulted)

					rinj := ipc.NewFaultInjector(faultKillPlan(2026, everyN))
					ringFaulted, _ := runAppOn(t, a, scale, rinj, batch, proxy.TransportRing)
					diffDigests(t, "ring-faulted", ref, ringFaulted)
					if rinj.Injected() == 0 && inj.Injected() > 0 {
						t.Errorf("kill plan fired %d faults on framed but none on ring", inj.Injected())
					}
				})
			}
			// Not every app rebinds kernel args (pure bandwidth tests
			// post nothing), but across the suite the unbatched ring
			// runs must have exercised the fire-and-forget path.
			if !batch && totalPosted == 0 {
				t.Errorf("no unbatched ring run posted any call; fire-and-forget path untested")
			}
		})
	}
}

// TestTransportParityRingFaultKinds drives one app through the
// ring-extended kill plan (torn slots, stalled consumers, arena poison on
// top of the kill mix) and checks bit-identical results against a clean
// framed run. One app suffices: the ring-only kinds exercise transport
// machinery, not app behaviour.
func TestTransportParityRingFaultKinds(t *testing.T) {
	all := apps.All()
	if len(all) == 0 {
		t.Skip("no benchmark apps registered")
	}
	a := all[0]
	for _, cand := range all {
		if cand.Name == "Triad" { // chatty app: plenty of calls to fault
			a = cand
		}
	}
	ref, _ := runAppOn(t, a, 0.2, nil, false, proxy.TransportPipe)
	inj := ipc.NewFaultInjector(ringKillPlan(2026, 10))
	faulted, _ := runAppOn(t, a, 0.2, inj, false, proxy.TransportRing)
	diffDigests(t, "ring-extended-faults", ref, faulted)
	if inj.Injected() == 0 {
		t.Error("ring-extended plan injected nothing")
	}
}

// TestTransportParityCheckpointDigest: a checkpoint taken on one
// transport restores to identical buffer contents on either transport —
// the checkpoint image is transport-agnostic.
func TestTransportParityCheckpointDigest(t *testing.T) {
	run := func(tr proxy.Transport) map[Handle]string {
		node := newNodeNV("pc0")
		_, c := attach(t, node, Options{Shadow: ShadowFull, Transport: tr})
		app := setupVaddApp(t, c, 256)
		app.launch(t)
		if err := c.Finish(app.q); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Checkpoint(node.LocalDisk, "parity.ckpt"); err != nil {
			t.Fatal(err)
		}
		nc, _, err := Restore(node, node.LocalDisk, "parity.ckpt", Options{Transport: tr})
		if err != nil {
			t.Fatal(err)
		}
		defer nc.Detach()
		return memDigests(t, nc)
	}
	framed := run(proxy.TransportPipe)
	ring := run(proxy.TransportRing)
	diffDigests(t, "checkpoint-restore", framed, ring)
}

// TestRingCheckpointDrainConcurrent is the core half of the -race gate:
// a checkpoint with parallel drain workers issues concurrent reads over
// one ring while posted submissions from the run are still settling.
func TestRingCheckpointDrainConcurrent(t *testing.T) {
	node := newNodeNV("pc0")
	_, c := attach(t, node, Options{
		Shadow:       ShadowFull,
		Transport:    proxy.TransportRing,
		DrainWorkers: 4,
	})
	app := setupVaddApp(t, c, 1024)
	app.launch(t)
	// Leave fire-and-forget work in flight: the checkpoint's settle step
	// must drain it before the parallel preprocess reads begin.
	for i := 0; i < 8; i++ {
		if err := c.SetKernelArg(app.k, 3, 4, u32bytes(uint32(app.n))); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := c.Checkpoint(node.LocalDisk, "ringdrain.ckpt")
	if err != nil {
		t.Fatal(err)
	}
	if stats.DrainWorkers <= 1 {
		t.Errorf("parallel drain did not engage: workers = %d", stats.DrainWorkers)
	}
	if c.Proxy().Client.Stats().Posted == 0 {
		t.Error("no posted calls reached the ring")
	}
	app.verify(t)
}
