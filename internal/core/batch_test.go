package core

import (
	"bytes"
	"errors"
	"testing"

	"checl/internal/ipc"
	"checl/internal/ocl"
)

// TestBatchCoalescesRoundTrips: a run of fire-and-forget enqueues plus
// the closing clFinish must cost ONE wire call when batching is on, and
// at least 2x fewer wire calls than the classic one-call-per-enqueue
// path (the PR acceptance bar).
func TestBatchCoalescesRoundTrips(t *testing.T) {
	const iters = 10
	data := make([]byte, 4*64)
	for i := 0; i < 64; i++ {
		copy(data[4*i:], f32bytes(float32(i)))
	}

	run := func(batch bool) (wireCalls int64, c *CheCL, app *vaddApp) {
		node := newNodeNV("pc0")
		_, c = attach(t, node, Options{BatchEnqueues: batch})
		app = setupVaddApp(t, c, 64)
		if err := c.Drain(); err != nil {
			t.Fatal(err)
		}
		before := c.px.Client.Stats().Calls
		for i := 0; i < iters; i++ {
			if _, err := c.EnqueueWriteBuffer(app.q, app.a, false, 0, data, nil); err != nil {
				t.Fatal(err)
			}
			if _, err := c.EnqueueWriteBuffer(app.q, app.b, false, 0, data, nil); err != nil {
				t.Fatal(err)
			}
			if _, err := c.EnqueueNDRangeKernel(app.q, app.k, 1, [3]int{}, [3]int{64}, [3]int{64}, nil); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Finish(app.q); err != nil {
			t.Fatal(err)
		}
		return c.px.Client.Stats().Calls - before, c, app
	}

	batched, bc, bapp := run(true)
	unbatched, _, _ := run(false)

	if batched != 1 {
		t.Errorf("batched run cost %d wire calls; want 1 (3*%d enqueues + finish in one frame)", batched, iters)
	}
	if unbatched < 2*batched {
		t.Errorf("round-trip reduction below 2x: unbatched=%d batched=%d", unbatched, batched)
	}
	if got := bc.px.Client.Stats().Batched; got < int64(3*iters) {
		t.Errorf("batched-command counter = %d, want >= %d", got, 3*iters)
	}
	if n := bc.PendingBatch(); n != 0 {
		t.Errorf("%d commands still pending after clFinish", n)
	}
	// The batched run must still compute the right answer.
	bapp.verify(t)
}

// TestBatchDeferredErrorAttribution: a batched command that fails on the
// device surfaces at the next sync point as a *BatchError naming the
// originating entry point and its index, commands before it executed,
// and commands after it never ran.
func TestBatchDeferredErrorAttribution(t *testing.T) {
	node := newNodeNV("pc0")
	_, c := attach(t, node, Options{BatchEnqueues: true})
	app := setupVaddApp(t, c, 64)
	if err := c.Drain(); err != nil {
		t.Fatal(err)
	}

	size := int64(4 * app.n)
	first := bytes.Repeat([]byte{0xAA}, int(size))
	second := bytes.Repeat([]byte{0xBB}, int(size))

	// Index 0: valid write. Index 1: out-of-bounds write (the runtime
	// rejects it with CL_INVALID_VALUE). Index 2: a write that must
	// never execute. Index 3: the flushing clFinish.
	if _, err := c.EnqueueWriteBuffer(app.q, app.c, false, 0, first, nil); err != nil {
		t.Fatalf("valid deferred write returned eagerly: %v", err)
	}
	if _, err := c.EnqueueWriteBuffer(app.q, app.c, false, size, []byte{1, 2, 3, 4}, nil); err != nil {
		t.Fatalf("deferred out-of-bounds write must not fail at the call: %v", err)
	}
	if _, err := c.EnqueueWriteBuffer(app.q, app.c, false, 0, second, nil); err != nil {
		t.Fatal(err)
	}

	err := c.Finish(app.q)
	if err == nil {
		t.Fatal("clFinish swallowed the deferred error")
	}
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("deferred error type = %T (%v), want *BatchError", err, err)
	}
	if be.Method != "clEnqueueWriteBuffer" {
		t.Errorf("attributed method = %q, want clEnqueueWriteBuffer", be.Method)
	}
	if be.Index != 1 {
		t.Errorf("attributed index = %d, want 1", be.Index)
	}
	var oe *ocl.Error
	if !errors.As(err, &oe) {
		t.Fatalf("BatchError does not unwrap to *ocl.Error: %v", err)
	}
	if _, status, _ := oe.ErrorCode(); status != int32(ocl.InvalidValue) {
		t.Errorf("deferred status = %d, want CL_INVALID_VALUE", status)
	}

	// Partial execution: index 0 ran, index 2 did not.
	out, _, err := c.EnqueueReadBuffer(app.q, app.c, true, 0, size, nil)
	if err != nil {
		t.Fatalf("read after deferred error: %v", err)
	}
	if !bytes.Equal(out, first) {
		t.Errorf("buffer does not hold the pre-error write: got %x... want %x...", out[:4], first[:4])
	}
}

// TestBatchDeferredReadError: a terminal read is itself part of the
// batch; its failure carries read attribution, not clFinish.
func TestBatchDeferredReadError(t *testing.T) {
	node := newNodeNV("pc0")
	_, c := attach(t, node, Options{BatchEnqueues: true})
	app := setupVaddApp(t, c, 64)

	_, _, err := c.EnqueueReadBuffer(app.q, app.c, true, int64(4*app.n), 16, nil)
	if err == nil {
		t.Fatal("out-of-bounds batched read succeeded")
	}
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("read error type = %T (%v), want *BatchError", err, err)
	}
	if be.Method != "clEnqueueReadBuffer" {
		t.Errorf("attributed method = %q, want clEnqueueReadBuffer", be.Method)
	}

	// The queue is still usable afterwards.
	app.launch(t)
	app.verify(t)
}

// TestBatchDeferredErrorUnderFaults: the deferred-error contract holds
// under the seeded kill plan — crashes during the flush are retried or
// failed over, and the surviving error still names the right command.
func TestBatchDeferredErrorUnderFaults(t *testing.T) {
	node := newNodeNV("pc0")
	inj := ipc.NewFaultInjector(faultKillPlan(7, 3))
	_, c := attach(t, node, Options{
		BatchEnqueues: true,
		AutoFailover:  true,
		Shadow:        ShadowFull,
		Fault:         inj,
	})
	app := setupVaddApp(t, c, 64)
	size := int64(4 * app.n)
	data := bytes.Repeat([]byte{0xCC}, int(size))

	// Healthy batched traffic first, so faults land mid-stream.
	for i := 0; i < 4; i++ {
		if _, err := c.EnqueueWriteBuffer(app.q, app.a, false, 0, data, nil); err != nil {
			t.Fatal(err)
		}
		app.launch(t)
		if err := c.Finish(app.q); err != nil {
			t.Fatalf("fault-free batch %d under injection: %v", i, err)
		}
	}

	if _, err := c.EnqueueWriteBuffer(app.q, app.c, false, 0, data, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.EnqueueWriteBuffer(app.q, app.c, false, size, []byte{9}, nil); err != nil {
		t.Fatal(err)
	}
	err := c.Finish(app.q)
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("deferred error under faults = %T (%v), want *BatchError", err, err)
	}
	if be.Method != "clEnqueueWriteBuffer" || be.Index != 1 {
		t.Errorf("attribution under faults = %s[%d], want clEnqueueWriteBuffer[1]", be.Method, be.Index)
	}
	if inj.Injected() == 0 {
		t.Error("fault plan never fired; test proves nothing about crash interplay")
	}

	// And the pre-error write survived the chaos.
	out, _, err := c.EnqueueReadBuffer(app.q, app.c, true, 0, size, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Error("pre-error write lost under fault plan")
	}
}
