package core

// Proxy fault tolerance. The API proxy is disposable state: every real
// OpenCL object it holds can be recreated from the shadow object database
// (the same §III-C machinery a restart uses). forward wraps every proxied
// interaction so that when the connection to the proxy is unrecoverable —
// the proxy process crashed, or every reconnect attempt failed — CheCL
// spawns a fresh proxy, rebinds all objects in dependency order, and
// transparently re-issues the interrupted call.
//
// Device buffer contents are the one thing the database cannot recreate
// by replay alone: they live only in the dead proxy's device memory
// between checkpoints. The shadow-buffer policy keeps host-side copies
// (reusing the staged-copy field the checkpoint preprocess phase uses) so
// a failover re-uploads current data instead of zeros.

import (
	"errors"
	"fmt"

	"checl/internal/ipc"
	"checl/internal/proxy"
	"checl/internal/vtime"
)

// ShadowPolicy selects how CheCL maintains host-side shadow copies of
// device buffers between checkpoints, bounding what a proxy crash loses.
type ShadowPolicy int

const (
	// ShadowNone keeps no copies: a failover recreates buffers zeroed
	// (or from the last checkpoint's staged data, if still held).
	ShadowNone ShadowPolicy = iota
	// ShadowWrites mirrors host-visible transfers only: EnqueueWrite/
	// CopyBuffer update the shadow, kernel writes are not read back. A
	// failover restores the last host-written state; kernel results since
	// then are lost.
	ShadowWrites
	// ShadowFull additionally reads back every buffer a kernel may have
	// written after each launch, so a failover loses nothing. This is the
	// expensive, fully-transparent arm of the proxy-crash ablation.
	ShadowFull
)

func (p ShadowPolicy) String() string {
	switch p {
	case ShadowWrites:
		return "shadow-writes"
	case ShadowFull:
		return "shadow-full"
	default:
		return "shadow-none"
	}
}

// FailoverStats counts proxy failovers and their cost.
type FailoverStats struct {
	Failovers     int            // fresh proxies spawned after a crash
	ReplayedCalls int64          // API calls re-executed to rebind the database
	LastRecovery  vtime.Duration // rebind time of the most recent failover
	TotalRecovery vtime.Duration // rebind time across all failovers
}

// FailoverStats reports the failovers absorbed so far.
func (c *CheCL) FailoverStats() FailoverStats { return c.fstats }

// maxFailoverAttempts bounds how many consecutive proxy respawns one call
// may trigger before the error surfaces.
const maxFailoverAttempts = 3

// shadowOn reports whether any shadow-buffer policy is active.
func (c *CheCL) shadowOn() bool { return c.opts.Shadow != ShadowNone }

// spawnOpts translates the attachment options into proxy spawn options.
func (c *CheCL) spawnOpts() proxy.SpawnOpts {
	return proxy.SpawnOpts{
		Transport:   c.opts.Transport,
		Fault:       c.opts.Fault,
		CallTimeout: c.opts.CallTimeout,
		Retry:       c.opts.Retry,
	}
}

// forward runs one proxied interaction. fn receives the current proxy
// client and must re-read every translated handle it uses (records are
// pointers, so rec.real re-reads naturally), because after a failover the
// same logical objects live behind new real handles. On an unrecoverable
// connection error forward fails the proxy over and re-runs fn.
func (c *CheCL) forward(op string, fn func(api *proxy.Client) error) error {
	err := fn(c.px.Client)
	for attempt := 0; err != nil && errors.Is(err, ipc.ErrConnDown); attempt++ {
		if !c.opts.AutoFailover || c.inFailover || attempt >= maxFailoverAttempts {
			return err
		}
		if ferr := c.failover(); ferr != nil {
			return fmt.Errorf("checl: %s: proxy failover: %w", op, ferr)
		}
		// Re-issuing the interrupted call is part of the recovery: it runs
		// with injection suspended, like the rebind itself, so a periodic
		// fault plan cannot resonate with the rebind length and crash every
		// re-issue of the same call forever. Faults resume with the next
		// application call.
		if c.opts.Fault != nil {
			c.opts.Fault.Suspend()
		}
		err = fn(c.px.Client)
		if c.opts.Fault != nil {
			c.opts.Fault.Resume()
		}
	}
	return err
}

// failover replaces the dead proxy with a fresh one and rebinds every
// object in the database onto it, §III-C style: recreate in dependency
// order, re-upload shadowed buffer data, recompile programs, replay
// clSetKernelArg, and mint dummy events for the in-flight enqueues whose
// completions died with the old proxy.
func (c *CheCL) failover() error {
	c.inFailover = true
	defer func() { c.inFailover = false }()
	// A proxy death invalidates an in-flight speculative epoch: the
	// copies the old proxy was producing are gone. Deterministic abort —
	// the next checkpoint stop-drains and reports EpochAborted.
	c.abortEpoch("proxy failover")
	if c.opts.Fault != nil {
		// Recovery must not be re-faulted into a livelock; real faults
		// resume once the rebind is done.
		c.opts.Fault.Suspend()
		defer c.opts.Fault.Resume()
	}

	sw := vtime.NewStopwatch(c.app.Clock())
	c.px.Kill()
	vendor, err := selectVendor(c.app.Node(), c.opts.VendorName)
	if err != nil {
		return err
	}
	px, err := proxy.SpawnWithOptions(c.app, vendor, c.spawnOpts())
	if err != nil {
		return err
	}
	c.px = px
	if _, err := c.rebindAll(); err != nil {
		return fmt.Errorf("rebinding %d objects: %w", c.db.liveObjects(), err)
	}

	recovery := sw.Elapsed()
	c.fstats.Failovers++
	c.fstats.ReplayedCalls += px.Client.Stats().Calls
	c.fstats.LastRecovery = recovery
	c.fstats.TotalRecovery += recovery
	return nil
}

// ---- shadow-buffer maintenance ----

// shadow returns m's shadow copy, allocating it zeroed on first touch.
func shadow(m *memRec) []byte {
	if int64(len(m.Data)) != m.Size {
		grown := make([]byte, m.Size)
		copy(grown, m.Data)
		m.Data = grown
	}
	return m.Data
}

// shadowSeed initialises a new buffer's shadow from its creation-time
// host data, if any.
func (c *CheCL) shadowSeed(m *memRec, hostData []byte) {
	if !c.shadowOn() {
		return
	}
	s := shadow(m)
	if hostData != nil {
		copy(s, hostData)
	}
}

// shadowWrite mirrors a host-to-device transfer (or a device read that
// refreshed our knowledge of the region) into the shadow copy.
func (c *CheCL) shadowWrite(m *memRec, offset int64, data []byte) {
	if !c.shadowOn() || offset < 0 || offset > m.Size {
		return
	}
	copy(shadow(m)[offset:], data)
}

// shadowCopy mirrors a device-to-device copy between two shadows.
func (c *CheCL) shadowCopy(src, dst *memRec, srcOff, dstOff, size int64) {
	if !c.shadowOn() {
		return
	}
	if srcOff < 0 || dstOff < 0 || srcOff+size > src.Size || dstOff+size > dst.Size {
		return
	}
	copy(shadow(dst)[dstOff:dstOff+size], shadow(src)[srcOff:srcOff+size])
}

// shadowReadback refreshes the shadows of every buffer a kernel launch
// may have written. Only the ShadowFull policy pays this per-launch
// device-to-host traffic; it is what makes failover lossless.
func (c *CheCL) shadowReadback(api *proxy.Client, qrec *queueRec, mems []*memRec) error {
	if c.opts.Shadow != ShadowFull {
		return nil
	}
	for _, m := range mems {
		data, _, err := api.EnqueueReadBuffer(qrec.real, m.real, true, 0, m.Size, nil)
		if err != nil {
			return err
		}
		m.Data = data
	}
	return nil
}
