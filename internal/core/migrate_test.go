package core

import (
	"math"
	"testing"

	"checl/internal/hw"
	"checl/internal/ocl"
	"checl/internal/proc"
	"checl/internal/vtime"
)

func TestMigrateAcrossNodesSharedNFS(t *testing.T) {
	// NVIDIA node -> AMD node over the cluster NFS: the checkpoint taken
	// under one vendor's OpenCL restarts under the other's (§IV-C).
	cluster := proc.NewCluster("pc", 2, hw.TableISpec(), func(i int) []*ocl.Vendor {
		if i == 0 {
			return []*ocl.Vendor{ocl.NVIDIA()}
		}
		return []*ocl.Vendor{ocl.AMD()}
	})
	src, dst := cluster.Nodes[0], cluster.Nodes[1]

	_, c := attach(t, src, Options{})
	app := setupVaddApp(t, c, 1<<12)
	app.launch(t)
	c.Finish(app.q)

	rc, ms, err := Migrate(c, cluster.NFS, "mig.ckpt", dst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Detach()

	if ms.Transfer != 0 {
		t.Errorf("shared NFS migration should not pay a transfer: %v", ms.Transfer)
	}
	if ms.Total <= 0 || ms.Total != ms.Checkpoint.Phases.Total()+ms.Restart.Total {
		t.Errorf("migration total inconsistent: %+v", ms)
	}
	// Source incarnation is gone; the restored app runs on the AMD node.
	if len(src.Processes()) != 0 {
		t.Errorf("source node still has %d processes", len(src.Processes()))
	}
	if rc.App().Node() != dst {
		t.Error("restored app on wrong node")
	}
	app.api = rc
	app.verify(t)
	// The restored device really is an AMD-platform device.
	info, err := rc.GetDeviceInfo(app.dev)
	if err != nil {
		t.Fatal(err)
	}
	if info.Name == "Tesla C1060" {
		t.Error("device not remapped to the destination vendor")
	}
}

func TestMigrateUnsharedDiskPaysTransfer(t *testing.T) {
	nvA := proc.NewNode("a", hw.TableISpec(), ocl.NVIDIA())
	nvB := proc.NewNode("b", hw.TableISpec(), ocl.NVIDIA())
	_, c := attach(t, nvA, Options{})
	app := setupVaddApp(t, c, 1<<14)
	app.launch(t)
	c.Finish(app.q)
	rc, ms, err := Migrate(c, nvA.LocalDisk, "mig.ckpt", nvB, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Detach()
	if ms.Transfer <= 0 {
		t.Error("unshared-disk migration must pay a NIC transfer")
	}
	app.api = rc
	app.verify(t)
}

func TestRuntimeProcessorSelectionGPUtoCPU(t *testing.T) {
	// §IV-C: with AMD OpenCL the compute device can be changed CPU<->GPU
	// at runtime via a RAM-disk checkpoint.
	node := newNodeAMD("pc0")
	_, c := attach(t, node, Options{})
	app := setupVaddApp(t, c, 1<<10) // first device = HD5870 (GPU)
	app.launch(t)
	c.Finish(app.q)

	before, err := c.GetDeviceInfo(app.dev)
	if err != nil || before.Type != hw.DeviceGPU {
		t.Fatalf("initial device = %+v, %v", before, err)
	}

	rc, ms, err := SelectProcessor(c, hw.DeviceCPU)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Detach()
	app.api = rc
	after, err := rc.GetDeviceInfo(app.dev)
	if err != nil {
		t.Fatal(err)
	}
	if after.Type != hw.DeviceCPU {
		t.Fatalf("device after processor selection = %+v, want CPU", after)
	}
	app.launch(t)
	app.verify(t)

	// And back to the GPU.
	rc2, _, err := SelectProcessor(rc, hw.DeviceGPU)
	if err != nil {
		t.Fatal(err)
	}
	defer rc2.Detach()
	app.api = rc2
	if info, _ := rc2.GetDeviceInfo(app.dev); info.Type != hw.DeviceGPU {
		t.Fatalf("device after second selection = %+v, want GPU", info)
	}
	app.launch(t)
	app.verify(t)

	// RAM-disk checkpointing keeps the switch cost far below a disk
	// migration of the same image.
	if ms.Checkpoint.FSName != "ramdisk" {
		t.Errorf("processor selection used %q, want ramdisk", ms.Checkpoint.FSName)
	}
}

func TestCrossVendorBinaryProgramFailsToMigrate(t *testing.T) {
	// A program created via clCreateProgramWithBinary on NVIDIA cannot be
	// restored on an AMD node — why the paper deprecates binaries (§III-D).
	cluster := proc.NewCluster("pc", 2, hw.TableISpec(), func(i int) []*ocl.Vendor {
		if i == 0 {
			return []*ocl.Vendor{ocl.NVIDIA()}
		}
		return []*ocl.Vendor{ocl.AMD()}
	})
	src, dst := cluster.Nodes[0], cluster.Nodes[1]
	_, c := attach(t, src, Options{})
	app := setupVaddApp(t, c, 64)
	bin, err := c.GetProgramBinary(app.prog)
	if err != nil {
		t.Fatal(err)
	}
	prog2, err := c.CreateProgramWithBinary(app.ctx, app.dev, bin)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.BuildProgram(prog2, ""); err != nil {
		t.Fatal(err)
	}
	_, _, err = Migrate(c, cluster.NFS, "bad.ckpt", dst, Options{})
	if err == nil {
		t.Fatal("migration with a cross-vendor binary program should fail")
	}
}

func TestMigrationCostModelFitAndPredict(t *testing.T) {
	// Collect migration samples at several problem sizes, fit Eq. 1, and
	// check the prediction tracks the measurements (Fig. 8).
	var samples []CostSample
	for _, n := range []int{1 << 12, 1 << 14, 1 << 16, 1 << 18} {
		nvA := proc.NewNode("a", hw.TableISpec(), ocl.NVIDIA())
		nvB := proc.NewNode("b", hw.TableISpec(), ocl.NVIDIA())
		nvB.NFS = nvA.NFS // no shared NFS; use local+transfer instead
		_, c := attach(t, nvA, Options{})
		app := setupVaddApp(t, c, n)
		app.launch(t)
		c.Finish(app.q)
		rc, ms, err := Migrate(c, nvA.LocalDisk, "m.ckpt", nvB, Options{})
		if err != nil {
			t.Fatal(err)
		}
		rc.Detach()
		samples = append(samples, CostSample{
			FileSize:  ms.Checkpoint.FileSize,
			Recompile: ms.Restart.Recompile,
			Measured:  ms.Total,
		})
	}
	model, err := FitCostModel(samples)
	if err != nil {
		t.Fatal(err)
	}
	if model.Alpha <= 0 {
		t.Errorf("alpha = %v, want > 0 (cost grows with file size)", model.Alpha)
	}
	var preds, acts []vtime.Duration
	for _, s := range samples {
		preds = append(preds, model.Predict(s.FileSize, s.Recompile))
		acts = append(acts, s.Measured)
	}
	mape, err := MeanAbsolutePercentError(preds, acts)
	if err != nil {
		t.Fatal(err)
	}
	if mape > 15 {
		t.Errorf("cost-model MAPE = %.1f%%, want <= 15%%", mape)
	}
}

func TestFitCostModelErrors(t *testing.T) {
	if _, err := FitCostModel(nil); err == nil {
		t.Error("empty fit should fail")
	}
	same := []CostSample{
		{FileSize: 100, Measured: vtime.Second},
		{FileSize: 100, Measured: vtime.Second},
	}
	if _, err := FitCostModel(same); err == nil {
		t.Error("degenerate fit should fail")
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2.1, 3.9, 6.2, 7.8, 10.1}
	r, err := Correlation(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.99 {
		t.Errorf("r = %v, want >= 0.99 for a near-linear relation", r)
	}
	inv := []float64{10, 8, 6, 4, 2}
	r2, _ := Correlation(xs, inv)
	if r2 > -0.999 {
		t.Errorf("r = %v, want -1 for a perfectly inverse relation", r2)
	}
	if _, err := Correlation(xs, xs[:2]); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := Correlation([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("constant series should fail")
	}
}

func TestMAPE(t *testing.T) {
	p := []vtime.Duration{2 * vtime.Second}
	a := []vtime.Duration{1 * vtime.Second}
	mape, err := MeanAbsolutePercentError(p, a)
	if err != nil || math.Abs(mape-100) > 1e-9 {
		t.Errorf("MAPE = %v, %v; want 100", mape, err)
	}
	if _, err := MeanAbsolutePercentError(nil, nil); err == nil {
		t.Error("empty MAPE should fail")
	}
}

func TestCheckpointTimeCorrelatesWithFileSize(t *testing.T) {
	// §IV-B: corr(total checkpoint time, checkpoint file size) ~ 0.99.
	var sizes, times []float64
	for _, n := range []int{1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18} {
		node := newNodeNV("pc")
		_, c := attach(t, node, Options{})
		app := setupVaddApp(t, c, n)
		app.launch(t)
		st, err := c.Checkpoint(node.LocalDisk, "s.ckpt")
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, float64(st.FileSize))
		times = append(times, st.Phases.Total().Seconds())
		c.Detach()
	}
	r, err := Correlation(sizes, times)
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.98 {
		t.Errorf("corr(checkpoint time, file size) = %.3f, want >= 0.98", r)
	}
}
