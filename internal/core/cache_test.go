package core

import (
	"testing"

	"checl/internal/ocl"
)

// TestInfoCachesServeLocally: immutable info queries — platform list,
// device list, platform/device info, build info, kernel work-group info
// — are answered from the object database without a wire call once
// warm. setupVaddApp already asked for platforms and devices, so the
// list caches are warm on entry.
func TestInfoCachesServeLocally(t *testing.T) {
	node := newNodeNV("pc0")
	_, c := attach(t, node, Options{})
	app := setupVaddApp(t, c, 64)

	plats, err := c.GetPlatformIDs() // warm from setup
	if err != nil {
		t.Fatal(err)
	}

	calls0 := c.px.Client.Stats().Calls
	hits0 := c.CacheStats().Hits

	if _, err := c.GetPlatformIDs(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetPlatformInfo(plats[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetDeviceIDs(plats[0], ocl.DeviceTypeAll); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetDeviceInfo(app.dev); err != nil {
		t.Fatal(err)
	}

	if calls := c.px.Client.Stats().Calls; calls != calls0 {
		t.Errorf("cached info queries cost %d wire calls; want 0", calls-calls0)
	}
	if hits := c.CacheStats().Hits; hits != hits0+4 {
		t.Errorf("cache hits = %d, want %d", hits, hits0+4)
	}

	// Build info and work-group info: one round trip to fill, then local.
	if _, err := c.GetProgramBuildInfo(app.prog, app.dev); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetKernelWorkGroupInfo(app.k, app.dev); err != nil {
		t.Fatal(err)
	}
	calls1 := c.px.Client.Stats().Calls
	bi1, err := c.GetProgramBuildInfo(app.prog, app.dev)
	if err != nil {
		t.Fatal(err)
	}
	wg1, err := c.GetKernelWorkGroupInfo(app.k, app.dev)
	if err != nil {
		t.Fatal(err)
	}
	if calls := c.px.Client.Stats().Calls; calls != calls1 {
		t.Errorf("repeat build/wg info queries cost %d wire calls; want 0", calls-calls1)
	}
	if !bi1.Success {
		t.Error("cached build info lost the success flag")
	}
	if wg1.WorkGroupSize <= 0 {
		t.Errorf("cached work-group info is empty: %+v", wg1)
	}
}

// TestCacheInvalidationOnRestore: the caches are unexported database
// fields, so a checkpoint never serialises them; a restored CheCL
// starts cold and its first info query re-forwards against the new
// binding (no stale real handles can be served).
func TestCacheInvalidationOnRestore(t *testing.T) {
	node := newNodeNV("pc0")
	_, c := attach(t, node, Options{})
	app := setupVaddApp(t, c, 64)

	wgBefore, err := c.GetKernelWorkGroupInfo(app.k, app.dev)
	if err != nil {
		t.Fatal(err)
	}
	app.launch(t)
	if err := c.Finish(app.q); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Checkpoint(node.LocalDisk, "cache.ckpt"); err != nil {
		t.Fatal(err)
	}
	nc, _, err := Restore(node, node.LocalDisk, "cache.ckpt", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Detach()

	st := nc.CacheStats()
	if st.Gen == 0 {
		t.Error("restore did not bump the cache generation (rebind must invalidate)")
	}
	if st.Hits != 0 {
		t.Errorf("restored CheCL inherited %d cache hits; caches must not survive serialisation", st.Hits)
	}

	// First query after restore forwards; the second hits.
	calls0 := nc.px.Client.Stats().Calls
	wgAfter, err := nc.GetKernelWorkGroupInfo(app.k, app.dev)
	if err != nil {
		t.Fatal(err)
	}
	if nc.px.Client.Stats().Calls == calls0 {
		t.Error("post-restore work-group query did not forward; a stale cache answered")
	}
	if wgAfter != wgBefore {
		t.Errorf("work-group info diverged across restore: %+v vs %+v", wgAfter, wgBefore)
	}
	hits := nc.CacheStats().Hits
	if _, err := nc.GetKernelWorkGroupInfo(app.k, app.dev); err != nil {
		t.Fatal(err)
	}
	if nc.CacheStats().Hits != hits+1 {
		t.Error("second post-restore work-group query missed the refilled cache")
	}
}

// TestCacheInvalidationOnFailover: an AutoFailover rebind lands on a
// fresh proxy; every cached answer described the dead binding and must
// be dropped, then refilled against the new one.
func TestCacheInvalidationOnFailover(t *testing.T) {
	node := newNodeNV("pc0")
	_, c := attach(t, node, Options{AutoFailover: true, Shadow: ShadowFull})
	app := setupVaddApp(t, c, 64)

	if _, err := c.GetKernelWorkGroupInfo(app.k, app.dev); err != nil {
		t.Fatal(err)
	}
	gen0 := c.CacheStats().Gen

	c.Proxy().Kill()
	if err := c.Finish(app.q); err != nil {
		t.Fatalf("finish after crash (should fail over): %v", err)
	}
	if c.FailoverStats().Failovers != 1 {
		t.Fatalf("failovers = %d, want 1", c.FailoverStats().Failovers)
	}
	if gen := c.CacheStats().Gen; gen <= gen0 {
		t.Errorf("failover rebind did not invalidate caches: gen %d -> %d", gen0, gen)
	}

	// The wg cache is cold again: first query forwards, second hits.
	calls0 := c.px.Client.Stats().Calls
	if _, err := c.GetKernelWorkGroupInfo(app.k, app.dev); err != nil {
		t.Fatal(err)
	}
	if c.px.Client.Stats().Calls == calls0 {
		t.Error("post-failover work-group query served from a stale cache")
	}
	hits := c.CacheStats().Hits
	if _, err := c.GetKernelWorkGroupInfo(app.k, app.dev); err != nil {
		t.Fatal(err)
	}
	if c.CacheStats().Hits != hits+1 {
		t.Error("refilled cache not hit after failover")
	}

	// Platform/device answers are refreshed by the rebind and still valid.
	plats, err := c.GetPlatformIDs()
	if err != nil || len(plats) == 0 {
		t.Fatalf("platform list after failover: %v (%d)", err, len(plats))
	}
	if _, err := c.GetDeviceInfo(app.dev); err != nil {
		t.Fatalf("device info after failover: %v", err)
	}
}
