// Package mpi is a minimal message-passing substrate in the spirit of
// Open MPI, sufficient to reproduce the paper's MPI experiments: ranks
// mapped onto simulated cluster nodes, point-to-point Send/Recv with
// NIC-modelled transfer costs, Barrier/Bcast/Allreduce collectives, and
// Hursey-style coordinated checkpointing where per-node local snapshots
// are aggregated into one global snapshot on NFS (§IV-B, Fig. 6).
//
// On top of the coordinated checkpoints the package implements partial
// restart: with Options.LogMessages enabled, every Send between two
// committed generations is appended to an in-memory per-(sender,receiver)
// log, so a single failed rank can be revived from its own segment of the
// last committed global snapshot (RestoreRank) while the survivors keep
// running — logged inbound traffic is replayed in sequence order, the
// recovering rank's re-executed sends are suppressed by sequence number,
// and the failure-aware clock barrier lets survivors park instead of
// deadlock until the rank rejoins. See DESIGN.md §12.
package mpi

import (
	"bytes"
	"errors"
	"fmt"
	"sync"

	"checl/internal/core"
	"checl/internal/proc"
	"checl/internal/store"
	"checl/internal/vtime"
)

// ErrRankDown is wrapped by every operation addressed to (or stalled on)
// a dead rank that cannot be partially restored: Send/Recv to the dead
// rank, and any Barrier, once message logging is off. Match with
// errors.Is.
var ErrRankDown = errors.New("rank is down")

// RankKilled is the error a fault-injected MPI operation returns on the
// victim rank: the rank's process (and its proxy) are dead by the time
// the caller sees it. Survivors do not see RankKilled — they park (with
// logging) or get ErrRankDown (without).
type RankKilled struct {
	Rank int
	Op   int        // the victim's MPI-operation count at the kill
	At   vtime.Time // victim clock when the kill landed
}

func (e *RankKilled) Error() string {
	return fmt.Sprintf("mpi: rank %d killed at op %d (%s)", e.Rank, e.Op, e.At)
}

// PartialRestoreUnsupported is the typed degraded path of RestoreRank:
// rank-level recovery cannot proceed and the job needs a full
// RestoreGlobalFromStore rollback. It latches the world as failed so
// parked survivors unwind with it instead of waiting forever.
type PartialRestoreUnsupported struct {
	Rank   int
	Reason string
}

func (e *PartialRestoreUnsupported) Error() string {
	return fmt.Sprintf("mpi: partial restore of rank %d unsupported: %s (full rollback required)", e.Rank, e.Reason)
}

// ReplayDiverged reports a recovering rank re-executing a send whose
// payload differs from what the log recorded for that sequence number —
// a determinism violation, not a recoverable fault.
type ReplayDiverged struct {
	From, To, Tag int
	Seq           int64
}

func (e *ReplayDiverged) Error() string {
	return fmt.Sprintf("mpi: replayed send %d->%d tag %d seq %d diverged from the message log",
		e.From, e.To, e.Tag, e.Seq)
}

// Options configures a World beyond its size.
type Options struct {
	// LogMessages enables sender-side message logging between coordinated
	// checkpoints — the substrate RestoreRank replays from. Without it a
	// rank death is a whole-job failure (every operation returns an error
	// wrapping ErrRankDown).
	LogMessages bool
	// Fault optionally injects seeded rank kills at MPI operation
	// boundaries.
	Fault *RankFaultInjector
}

// rankState tracks a rank through the failure/recovery cycle.
type rankState int

const (
	rankAlive rankState = iota
	rankDown
	rankRestoring
)

// message is one in-flight point-to-point payload.
type message struct {
	from   int
	tag    int
	seq    int64 // per-(from,to) channel sequence number, 1-based
	data   []byte
	sentAt vtime.Time // sender clock at send time
}

// commitRecord is the world-side bookkeeping snapshot taken atomically
// with the completion of a coordinated checkpoint's final barrier. A
// partially restored rank resumes from exactly this point.
type commitRecord struct {
	manifest string    // store manifest ID, "" for flat-NFS checkpoints
	seq      [][]int64 // sendSeq at commit
	barGen   int64     // completed-barrier count at commit
}

// World is one MPI job: size ranks mapped round-robin onto cluster nodes.
//
// One mutex guards all message-passing state — rank inboxes, sequence
// counters, sender logs, and the clock barrier — with per-rank conds for
// receive wakeups and a shared cond for barrier and parking wakeups. The
// coarse lock is deliberate: operations under it are queue edits and
// counter bumps, while all virtual-time charging happens outside it.
type World struct {
	cluster *proc.Cluster
	opts    Options
	ranks   []*Rank

	mu      sync.Mutex
	barCond *sync.Cond // barrier waiters + senders parked on a restoring rank
	states  []rankState
	down    int   // ranks currently Down or Restoring
	failed  error // latched fatal world error; every operation returns it

	// Failure-aware clock barrier: per-rank absolute arrival counters
	// instead of a waiting count, so a dead rank freezes the barrier (its
	// counter stops) and a restored rank re-arriving for generations that
	// completed before its death passes straight through at the recorded
	// completion time (catch-up).
	arrivals        []int64      // arrivals[r] = how many barriers rank r has entered
	barDone         int64        // barrier generations completed
	barBase         int64        // generation barTimes[0] corresponds to
	barTimes        []vtime.Time // completion times of gens [barBase, barDone)
	barMax          vtime.Time   // latest arrival seen for the generation in progress
	havePending     bool         // a commit rides on the generation in progress
	pendingGen      int64
	pendingManifest string

	// Sender-side message logging (LogMessages).
	sendSeq   [][]int64   // [from][to] last issued channel seq
	highWater [][]int64   // [from][to] seq at from's death; re-sends at or below are duplicates
	logs      [][]chanLog // [from][to]
	logStats  logCounters

	gen    int // committed coordinated generations
	commit commitRecord
	stall  vtime.StallTracker
	rec    recoveryCounters

	// First barrier generation to complete after the latest RestoreRank:
	// survivors' clock advance there is recovery stall (see await).
	stallGen  int64
	stallRank int
}

type recoveryCounters struct {
	kills         int
	partials      int
	suppressed    int
	replayedMsgs  int
	replayedBytes int64
}

// Rank is one MPI process.
type Rank struct {
	world       *World
	rank        int
	size        int
	node        *proc.Node
	proc        *proc.Process // current incarnation; world.mu
	cond        *sync.Cond    // receive waiters; on world.mu
	queue       []message     // inbox; world.mu
	incarnation int           // bumped by RestoreRank; world.mu
	ops         int           // MPI operations issued (fault-plan positions); world.mu
}

// NewWorld creates size ranks over the cluster, one process per rank,
// placed round-robin across nodes.
func NewWorld(cluster *proc.Cluster, size int) (*World, error) {
	return NewWorldWithOptions(cluster, size, Options{})
}

// NewWorldWithOptions is NewWorld with message logging and fault
// injection configurable.
func NewWorldWithOptions(cluster *proc.Cluster, size int, opts Options) (*World, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mpi: world size %d", size)
	}
	if len(cluster.Nodes) == 0 {
		return nil, fmt.Errorf("mpi: cluster has no nodes")
	}
	w := &World{
		cluster:   cluster,
		opts:      opts,
		states:    make([]rankState, size),
		arrivals:  make([]int64, size),
		sendSeq:   make([][]int64, size),
		highWater: make([][]int64, size),
		logs:      make([][]chanLog, size),
		stallGen:  -1,
		stallRank: -1,
	}
	w.barCond = sync.NewCond(&w.mu)
	if opts.Fault != nil {
		opts.Fault.bind(size)
	}
	for i := 0; i < size; i++ {
		w.sendSeq[i] = make([]int64, size)
		w.highWater[i] = make([]int64, size)
		w.logs[i] = make([]chanLog, size)
		node := cluster.Nodes[i%len(cluster.Nodes)]
		r := &Rank{
			world: w,
			rank:  i,
			size:  size,
			proc:  node.Spawn(fmt.Sprintf("mpi-rank-%d", i)),
			node:  node,
		}
		r.cond = sync.NewCond(&w.mu)
		w.ranks = append(w.ranks, r)
		w.watchRank(r)
	}
	return w, nil
}

// watchRank registers the death hook for the rank's current process
// incarnation.
func (w *World) watchRank(r *Rank) {
	rank, inc := r.rank, r.incarnation
	r.proc.OnExit(func() { w.rankExited(rank, inc) })
}

// rankExited is the process-death hook: it runs whatever killed the
// rank's process — a fault-injected op, or an external Kill.
func (w *World) rankExited(rank, incarnation int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	r := w.ranks[rank]
	if r.incarnation != incarnation || w.states[rank] != rankAlive {
		return // a stale hook from a replaced incarnation
	}
	w.states[rank] = rankDown
	w.down++
	w.rec.kills++
	// Everything sent up to this instant was delivered (or logged); any
	// re-execution after restore re-issues exactly these sequence numbers,
	// which Send suppresses as duplicates.
	copy(w.highWater[rank], w.sendSeq[rank])
	// In-flight inbound messages die with the process. The sender logs
	// still hold every undelivered or unconsumed one for replay.
	r.queue = nil
	if !w.opts.LogMessages {
		w.failLocked(fmt.Errorf("mpi: rank %d died: %w", rank, ErrRankDown))
	}
	w.broadcastLocked()
}

// failLocked latches a fatal world error. First failure wins.
func (w *World) failLocked(err error) {
	if w.failed == nil {
		w.failed = err
	}
}

func (w *World) fail(err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.failLocked(err)
	w.broadcastLocked()
}

// broadcastLocked wakes every parked operation: barrier waiters, parked
// senders, and receive waiters on every rank.
func (w *World) broadcastLocked() {
	w.barCond.Broadcast()
	for _, r := range w.ranks {
		r.cond.Broadcast()
	}
}

// opGate runs at the entry of every MPI operation: it surfaces a latched
// world failure, counts the operation for fault-plan positioning, and
// lands any due injected kill. Kills therefore only strike at MPI
// operation boundaries — never mid-snapshot — which keeps every failure
// point a well-defined cut of the message-passing state.
func (w *World) opGate(r *Rank) error {
	w.mu.Lock()
	if err := w.failed; err != nil {
		w.mu.Unlock()
		return err
	}
	if w.states[r.rank] != rankAlive {
		op := r.ops
		w.mu.Unlock()
		return &RankKilled{Rank: r.rank, Op: op}
	}
	r.ops++
	op := r.ops
	p := r.proc
	w.mu.Unlock()

	f := w.opts.Fault
	if f == nil || !f.shouldKill(r.rank, op, r.node.Clock.Now()) {
		return nil
	}
	p.Kill() // fires the OnExit hook -> rankExited
	return &RankKilled{Rank: r.rank, Op: op, At: r.node.Clock.Now()}
}

// Ranks exposes the world's ranks.
func (w *World) Ranks() []*Rank { return w.ranks }

// Cluster exposes the cluster the world runs on.
func (w *World) Cluster() *proc.Cluster { return w.cluster }

// Generation reports how many coordinated checkpoints have committed.
func (w *World) Generation() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.gen
}

// CommittedManifest reports the store manifest ID of the last committed
// coordinated checkpoint, or "" if none (no checkpoints yet, or the last
// one went to a flat NFS file).
func (w *World) CommittedManifest() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.commit.manifest
}

// RankArrivals reports each rank's barrier arrival counter: how many
// barrier generations it has entered. Mid-recovery the view is skewed —
// a restored rank's counter is rewound to the commit cut and catches back
// up — which is exactly what tooling wants to show.
func (w *World) RankArrivals() []int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]int64(nil), w.arrivals...)
}

// OpCount reports how many MPI operations the rank has issued. Tests use
// it to calibrate deterministic fault-plan positions from a fault-free
// run.
func (w *World) OpCount(rank int) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.ranks[rank].ops
}

// Run executes body concurrently on every rank and returns the first
// error (all ranks are waited for regardless).
func (w *World) Run(body func(r *Rank) error) error {
	errs := make([]error, len(w.ranks))
	var wg sync.WaitGroup
	for i, r := range w.ranks {
		wg.Add(1)
		go func(i int, r *Rank) {
			defer wg.Done()
			errs[i] = body(r)
		}(i, r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// RunWithRecovery is Run for fault plans. body runs on every rank; when a
// rank dies with *RankKilled, onKill is invoked from that rank's
// goroutine while the survivors stay parked in their MPI operations. If
// onKill returns nil (it typically calls RestoreRank and hands the
// restored CheCL back through shared state), body is re-invoked for the
// restored incarnation — the body must consult its restored application
// state to find its resume point. A non-nil onKill error fails the world
// so parked survivors unwind with it.
func (w *World) RunWithRecovery(body func(r *Rank) error, onKill func(r *Rank, k *RankKilled) error) error {
	errs := make([]error, len(w.ranks))
	var wg sync.WaitGroup
	for i, r := range w.ranks {
		wg.Add(1)
		go func(i int, r *Rank) {
			defer wg.Done()
			for {
				err := body(r)
				var rk *RankKilled
				if err != nil && onKill != nil && errors.As(err, &rk) && rk.Rank == r.rank {
					if herr := onKill(r, rk); herr != nil {
						w.fail(herr)
						errs[i] = herr
						return
					}
					continue
				}
				errs[i] = err
				return
			}
		}(i, r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Rank reports this rank's index.
func (r *Rank) Rank() int { return r.rank }

// Size reports the world size.
func (r *Rank) Size() int { return r.size }

// Node reports the node this rank runs on.
func (r *Rank) Node() *proc.Node { return r.node }

// World reports the world the rank belongs to.
func (r *Rank) World() *World { return r.world }

// Process reports the rank's simulated process (the current incarnation
// after a partial restore).
func (r *Rank) Process() *proc.Process {
	r.world.mu.Lock()
	defer r.world.mu.Unlock()
	return r.proc
}

// transferCost models moving n bytes from rank s to rank d.
func (w *World) transferCost(s, d *Rank, n int) vtime.Duration {
	spec := s.node.Spec
	if s.node == d.node {
		return spec.Inter.Memcpy.Transfer(int64(n))
	}
	return 50*vtime.Microsecond + spec.Inter.NIC.Transfer(int64(n))
}

// Send delivers data to rank 'to' with the given tag. It is buffered
// (eager protocol): the sender does not wait for a matching receive.
//
// With message logging on, the payload is appended to the (sender,
// receiver) log before delivery; a send addressed to a dead-but-
// recoverable rank is log-only (replay will deliver it), and a send
// re-executed by a recovering rank with a sequence number at or below its
// pre-death high-water mark is suppressed as a duplicate. A send to a
// rank that is mid-restore parks until the rank rejoins.
func (r *Rank) Send(to, tag int, data []byte) error {
	if to < 0 || to >= r.size {
		return fmt.Errorf("mpi: send to invalid rank %d", to)
	}
	if err := r.world.opGate(r); err != nil {
		return err
	}
	return r.world.send(r, to, tag, data)
}

func (w *World) send(r *Rank, to, tag int, data []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	// Park while the receiver is mid-restore: its replay set is being
	// assembled from the logs, and a message slipping in now would race
	// the replayed ordering.
	for w.failed == nil && w.states[to] == rankRestoring {
		w.barCond.Wait()
	}
	if w.failed != nil {
		return w.failed
	}
	if w.states[r.rank] != rankAlive {
		return &RankKilled{Rank: r.rank, Op: r.ops}
	}
	w.sendSeq[r.rank][to]++
	seq := w.sendSeq[r.rank][to]
	now := r.node.Clock.Now()
	if !w.opts.LogMessages {
		if w.states[to] == rankDown {
			return fmt.Errorf("mpi: send to rank %d: %w", to, ErrRankDown)
		}
		w.deliverLocked(to, message{from: r.rank, tag: tag, seq: seq, data: append([]byte(nil), data...), sentAt: now})
		return nil
	}
	if seq <= w.highWater[r.rank][to] {
		// Re-executed send of a message that was already delivered before
		// this rank's failure: suppress it. For user traffic the payload
		// must match what the log recorded — a divergent replay is a
		// determinism bug, not a recovery. Control traffic (negative
		// tags) is exempt: e.g. a re-executed checkpoint image may encode
		// clock-dependent state without being wrong.
		w.rec.suppressed++
		if tag >= 0 {
			ent := w.findLogEntry(r.rank, to, seq)
			if ent == nil || !bytes.Equal(ent.Data, data) {
				err := &ReplayDiverged{From: r.rank, To: to, Tag: tag, Seq: seq}
				w.failLocked(err)
				w.broadcastLocked()
				return err
			}
		}
		return nil
	}
	w.appendLogLocked(r.rank, to, logEntry{Seq: seq, Tag: tag, SentAt: now, Data: append([]byte(nil), data...)})
	if w.states[to] == rankDown {
		// Receiver is dead but recoverable: the log entry IS the message;
		// RestoreRank will replay it.
		return nil
	}
	w.deliverLocked(to, message{from: r.rank, tag: tag, seq: seq, data: append([]byte(nil), data...), sentAt: now})
	return nil
}

func (w *World) deliverLocked(to int, m message) {
	dst := w.ranks[to]
	dst.queue = append(dst.queue, m)
	dst.cond.Broadcast()
}

// Recv blocks until a message with the given source and tag arrives.
// Messages with other tags/sources stay queued in arrival order.
func (r *Rank) Recv(from, tag int) ([]byte, error) {
	if err := r.world.opGate(r); err != nil {
		return nil, err
	}
	return r.world.recv(r, from, tag)
}

func (w *World) recv(r *Rank, from, tag int) ([]byte, error) {
	entered := r.node.Clock.Now()
	sawRecovery := false
	w.mu.Lock()
	inc := r.incarnation
	for {
		if w.failed != nil {
			err := w.failed
			w.mu.Unlock()
			return nil, err
		}
		if r.incarnation != inc || w.states[r.rank] != rankAlive {
			op := r.ops
			w.mu.Unlock()
			return nil, &RankKilled{Rank: r.rank, Op: op}
		}
		for i, m := range r.queue {
			if (from >= 0 && m.from != from) || m.tag != tag {
				continue
			}
			r.queue = append(r.queue[:i], r.queue[i+1:]...)
			if w.opts.LogMessages {
				w.markConsumedLocked(m.from, r.rank, m.seq)
			}
			src := w.ranks[m.from]
			cost := w.transferCost(src, r, len(m.data))
			w.mu.Unlock()
			// Replayed messages carry their original send time, so the
			// modelled arrival instant — and with it the restored rank's
			// timeline — is bit-identical to the original delivery.
			r.node.Clock.AdvanceTo(m.sentAt.Add(cost))
			if sawRecovery {
				// This wait overlapped a rank failure: any clock advance
				// beyond the park instant is recovery-induced stall (a
				// replayed message keeps its original timestamp and
				// charges nothing).
				w.stall.Add("recv", r.node.Clock.Now().Sub(entered.Add(cost)))
			}
			return m.data, nil
		}
		if w.down > 0 {
			sawRecovery = true
		}
		r.cond.Wait()
	}
}

// Barrier blocks until every live rank has entered it; on exit all ranks'
// clocks agree on the barrier's completion time. While a rank is down (or
// restoring) under message logging, waiters park instead of deadlocking
// and complete once the restored rank re-arrives; without logging a
// barrier with a dead rank fails with the latched ErrRankDown error.
func (r *Rank) Barrier() error {
	if err := r.world.opGate(r); err != nil {
		return err
	}
	return r.world.await(r, "", false)
}

// commitBarrier is the final barrier of a coordinated checkpoint: its
// completion atomically commits the generation (sequence snapshot, log
// truncation, barrier-history trim). Rank 0 passes the store manifest ID;
// the other ranks pass "".
func (r *Rank) commitBarrier(manifest string) error {
	if err := r.world.opGate(r); err != nil {
		return err
	}
	return r.world.await(r, manifest, true)
}

// await is the failure-aware clock barrier.
func (w *World) await(r *Rank, manifest string, isCommit bool) error {
	w.mu.Lock()
	if err := w.failed; err != nil {
		w.mu.Unlock()
		return err
	}
	w.arrivals[r.rank]++
	myGen := w.arrivals[r.rank] - 1
	if myGen < w.barDone {
		// Catch-up: a restored rank re-running a barrier generation that
		// completed before its death. Pass straight through at the
		// recorded completion time — survivors have long moved on.
		t := w.barTimes[myGen-w.barBase]
		w.mu.Unlock()
		r.node.Clock.AdvanceTo(t)
		return nil
	}
	arrived := r.node.Clock.Now()
	if arrived > w.barMax {
		w.barMax = arrived
	}
	if isCommit {
		if !w.havePending || w.pendingGen != myGen {
			w.havePending = true
			w.pendingGen = myGen
			w.pendingManifest = ""
		}
		if manifest != "" {
			w.pendingManifest = manifest
		}
	}
	if w.barrierReadyLocked() {
		w.completeBarrierLocked()
	}
	recovery := false
	for myGen >= w.barDone {
		if err := w.failed; err != nil {
			w.mu.Unlock()
			return err
		}
		if w.down > 0 {
			recovery = true
		}
		w.barCond.Wait()
	}
	t := w.barTimes[myGen-w.barBase]
	// The first barrier generation to complete after a restore absorbs the
	// recovery's clock inflation: every survivor's advance beyond its own
	// arrival there is recovery-induced stall. (The parked-while-down case
	// additionally catches survivors whose wait overlapped the failure.)
	if myGen == w.stallGen && r.rank != w.stallRank {
		recovery = true
	}
	w.mu.Unlock()
	if recovery {
		w.stall.Add("barrier", t.Sub(arrived))
	}
	r.node.Clock.AdvanceTo(t)
	return nil
}

// barrierReadyLocked reports whether the generation in progress is
// complete: every rank has arrived more times than generations completed.
func (w *World) barrierReadyLocked() bool {
	for _, a := range w.arrivals {
		if a <= w.barDone {
			return false
		}
	}
	return true
}

func (w *World) completeBarrierLocked() {
	w.barTimes = append(w.barTimes, w.barMax)
	w.barDone++
	w.barMax = 0
	if w.havePending && w.pendingGen == w.barDone-1 {
		w.commitGenerationLocked(w.pendingManifest)
		w.havePending = false
	}
	w.barCond.Broadcast()
}

// commitGenerationLocked runs atomically with the completion of a
// coordinated checkpoint's final barrier: from this cut, every rank's
// committed image, the sequence counters, and the barrier generation
// agree — a partially restored rank resumes from exactly here.
func (w *World) commitGenerationLocked(manifest string) {
	w.gen++
	seq := make([][]int64, len(w.sendSeq))
	for i, row := range w.sendSeq {
		seq[i] = append([]int64(nil), row...)
	}
	w.commit = commitRecord{manifest: manifest, seq: seq, barGen: w.barDone}
	w.truncateLogsLocked()
	// Barrier history before the commit can never be caught up to again
	// (restores resume at barGen), so trim it: history stays bounded by
	// the barriers per checkpoint epoch. The just-completed generation is
	// kept — ranks parked in it still read their completion time.
	if n := w.barDone - 1 - w.barBase; n > 0 {
		w.barTimes = append([]vtime.Time(nil), w.barTimes[n:]...)
		w.barBase = w.barDone - 1
	}
}

// Bcast distributes root's data to every rank and returns each rank's
// copy.
func (r *Rank) Bcast(root int, data []byte) ([]byte, error) {
	if r.rank == root {
		for i := 0; i < r.size; i++ {
			if i == root {
				continue
			}
			if err := r.Send(i, tagBcast, data); err != nil {
				return nil, err
			}
		}
		return data, nil
	}
	return r.Recv(root, tagBcast)
}

// AllreduceSum sums one float64 across ranks (gather at rank 0 + bcast).
func (r *Rank) AllreduceSum(v float64) (float64, error) {
	if r.rank == 0 {
		sum := v
		for i := 1; i < r.size; i++ {
			data, err := r.Recv(i, tagReduce)
			if err != nil {
				return 0, err
			}
			sum += decodeF64(data)
		}
		if _, err := r.Bcast(0, encodeF64(sum)); err != nil {
			return 0, err
		}
		return sum, nil
	}
	if err := r.Send(0, tagReduce, encodeF64(v)); err != nil {
		return 0, err
	}
	data, err := r.Recv(0, tagBcast)
	if err != nil {
		return 0, err
	}
	return decodeF64(data), nil
}

const (
	tagBcast  = -100
	tagReduce = -101
	tagCkpt   = -102
)

func encodeF64(v float64) []byte {
	bits := f64bits(v)
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(bits >> (8 * i))
	}
	return b
}

func decodeF64(b []byte) float64 {
	var bits uint64
	for i := 0; i < 8 && i < len(b); i++ {
		bits |= uint64(b[i]) << (8 * i)
	}
	return f64frombits(bits)
}

// GlobalSnapshotStats describes one coordinated checkpoint.
type GlobalSnapshotStats struct {
	LocalTimes    []vtime.Duration // per-rank local snapshot time
	LocalSizes    []int64
	AggregateTime vtime.Duration // reading local snapshots + writing NFS
	GlobalSize    int64
	Total         vtime.Duration // slowest local + aggregation

	// LocalStalls is the per-rank application-visible stall of the local
	// snapshot (CheckpointStats.StallTime): with SpeculativeDrain the
	// drain overlaps this rank's continued execution and only the residue
	// appears here.
	LocalStalls []vtime.Duration

	// Store-backed snapshots only, set on rank 0: the manifest written
	// and the dedup/compression breakdown of the store Put.
	Manifest string
	StorePut *store.PutStats
}

// CoordinatedCheckpoint takes a global snapshot of an MPI+CheCL job
// (Hursey et al. style, as Open MPI's CPR service does): every rank
// synchronises, writes a local snapshot of its process to its node's
// local disk, and rank 0 aggregates the local snapshots into one global
// snapshot file on the shared NFS. The CheCL instance of rank r.rank must
// be passed as checl.
func (r *Rank) CoordinatedCheckpoint(checl *core.CheCL, globalPath string) (GlobalSnapshotStats, error) {
	var stats GlobalSnapshotStats
	if err := r.Barrier(); err != nil {
		return stats, err
	}

	// Speculative drain per rank: the epoch opens right after the
	// coordination barrier, so every rank's device-to-host copy overlaps
	// whatever work it still does before its local snapshot; validation
	// happens inside checl.Checkpoint, before the commit barrier below.
	if checl.Options().SpeculativeDrain {
		if err := checl.BeginCheckpointEpoch(); err != nil {
			return stats, fmt.Errorf("mpi: rank %d epoch begin: %w", r.rank, err)
		}
	}

	localPath := fmt.Sprintf("%s.local.%d", globalPath, r.rank)
	st, err := checl.Checkpoint(r.node.LocalDisk, localPath)
	if err != nil {
		return stats, fmt.Errorf("mpi: rank %d local snapshot: %w", r.rank, err)
	}
	if err := r.Barrier(); err != nil { // all local snapshots complete
		return stats, err
	}

	if r.rank != 0 {
		// Ship the local snapshot to the coordinator.
		data, err := r.node.LocalDisk.ReadFile(r.node.Clock, localPath)
		if err != nil {
			return stats, err
		}
		if err := r.Send(0, tagCkpt, data); err != nil {
			return stats, err
		}
		if err := r.commitBarrier(""); err != nil { // global snapshot complete
			return stats, err
		}
		stats.LocalTimes = []vtime.Duration{st.Phases.Total()}
		stats.LocalSizes = []int64{st.FileSize}
		stats.LocalStalls = []vtime.Duration{st.StallTime}
		return stats, nil
	}

	// Rank 0: aggregate local snapshots into the global snapshot on NFS.
	sw := vtime.NewStopwatch(r.node.Clock)
	locals := make([][]byte, r.size)
	var err0 error
	locals[0], err0 = r.node.LocalDisk.ReadFile(r.node.Clock, localPath)
	if err0 != nil {
		return stats, err0
	}
	for i := 1; i < r.size; i++ {
		data, err := r.Recv(i, tagCkpt)
		if err != nil {
			return stats, err
		}
		locals[i] = data
	}
	global, err := encodeGlobalSnapshot(locals)
	if err != nil {
		return stats, err
	}
	nfs := r.node.NFS
	if nfs == nil {
		return stats, fmt.Errorf("mpi: no shared NFS for the global snapshot")
	}
	if err := nfs.WriteFile(r.node.Clock, globalPath, global); err != nil {
		return stats, err
	}
	stats.AggregateTime = sw.Elapsed()
	stats.GlobalSize = int64(len(global))
	stats.LocalTimes = []vtime.Duration{st.Phases.Total()}
	stats.LocalSizes = []int64{st.FileSize}
	stats.LocalStalls = []vtime.Duration{st.StallTime}
	stats.Total = st.Phases.Total() + stats.AggregateTime
	if err := r.commitBarrier(""); err != nil {
		return stats, err
	}
	return stats, nil
}
