// Package mpi is a minimal message-passing substrate in the spirit of
// Open MPI, sufficient to reproduce the paper's MPI experiments: ranks
// mapped onto simulated cluster nodes, point-to-point Send/Recv with
// NIC-modelled transfer costs, Barrier/Bcast/Allreduce collectives, and
// Hursey-style coordinated checkpointing where per-node local snapshots
// are aggregated into one global snapshot on NFS (§IV-B, Fig. 6).
package mpi

import (
	"fmt"
	"sync"

	"checl/internal/core"
	"checl/internal/proc"
	"checl/internal/store"
	"checl/internal/vtime"
)

// message is one in-flight point-to-point payload.
type message struct {
	from   int
	tag    int
	data   []byte
	sentAt vtime.Time // sender clock at send time
}

// World is one MPI job: size ranks mapped round-robin onto cluster nodes.
type World struct {
	cluster *proc.Cluster
	ranks   []*Rank
	barrier *clockBarrier
}

// Rank is one MPI process.
type Rank struct {
	world *World
	rank  int
	size  int
	proc  *proc.Process
	node  *proc.Node
	inbox chan message
}

// NewWorld creates size ranks over the cluster, one process per rank,
// placed round-robin across nodes.
func NewWorld(cluster *proc.Cluster, size int) (*World, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mpi: world size %d", size)
	}
	if len(cluster.Nodes) == 0 {
		return nil, fmt.Errorf("mpi: cluster has no nodes")
	}
	w := &World{cluster: cluster, barrier: newClockBarrier(size)}
	for i := 0; i < size; i++ {
		node := cluster.Nodes[i%len(cluster.Nodes)]
		r := &Rank{
			world: w,
			rank:  i,
			size:  size,
			proc:  node.Spawn(fmt.Sprintf("mpi-rank-%d", i)),
			node:  node,
			inbox: make(chan message, 1024),
		}
		w.ranks = append(w.ranks, r)
	}
	return w, nil
}

// Ranks exposes the world's ranks.
func (w *World) Ranks() []*Rank { return w.ranks }

// Run executes body concurrently on every rank and returns the first
// error (all ranks are waited for regardless).
func (w *World) Run(body func(r *Rank) error) error {
	errs := make([]error, len(w.ranks))
	var wg sync.WaitGroup
	for i, r := range w.ranks {
		wg.Add(1)
		go func(i int, r *Rank) {
			defer wg.Done()
			errs[i] = body(r)
		}(i, r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Rank reports this rank's index.
func (r *Rank) Rank() int { return r.rank }

// Size reports the world size.
func (r *Rank) Size() int { return r.size }

// Node reports the node this rank runs on.
func (r *Rank) Node() *proc.Node { return r.node }

// Process reports the rank's simulated process.
func (r *Rank) Process() *proc.Process { return r.proc }

// transferCost models moving n bytes from rank s to rank d.
func (w *World) transferCost(s, d *Rank, n int) vtime.Duration {
	spec := s.node.Spec
	if s.node == d.node {
		return spec.Inter.Memcpy.Transfer(int64(n))
	}
	return 50*vtime.Microsecond + spec.Inter.NIC.Transfer(int64(n))
}

// Send delivers data to rank 'to' with the given tag. It is buffered
// (eager protocol): the sender does not wait for a matching receive.
func (r *Rank) Send(to, tag int, data []byte) error {
	if to < 0 || to >= r.size {
		return fmt.Errorf("mpi: send to invalid rank %d", to)
	}
	dst := r.world.ranks[to]
	msg := message{from: r.rank, tag: tag, data: append([]byte(nil), data...), sentAt: r.node.Clock.Now()}
	select {
	case dst.inbox <- msg:
		return nil
	default:
		return fmt.Errorf("mpi: rank %d inbox full sending tag %d", to, tag)
	}
}

// Recv blocks until a message with the given source and tag arrives.
// Out-of-order messages with other tags/sources are re-queued.
func (r *Rank) Recv(from, tag int) ([]byte, error) {
	var stash []message
	defer func() {
		for _, m := range stash {
			r.inbox <- m
		}
	}()
	for {
		msg, ok := <-r.inbox
		if !ok {
			return nil, fmt.Errorf("mpi: rank %d inbox closed", r.rank)
		}
		if (from < 0 || msg.from == from) && msg.tag == tag {
			src := r.world.ranks[msg.from]
			cost := r.world.transferCost(src, r, len(msg.data))
			arrival := msg.sentAt.Add(cost)
			r.node.Clock.AdvanceTo(arrival)
			return msg.data, nil
		}
		stash = append(stash, msg)
	}
}

// clockBarrier synchronises all ranks and aligns their virtual clocks to
// the latest participant (what a real barrier does to wall time).
type clockBarrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	waiting int
	gen     int
	maxTime vtime.Time
}

func newClockBarrier(parties int) *clockBarrier {
	b := &clockBarrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *clockBarrier) await(clock *vtime.Clock) {
	b.mu.Lock()
	gen := b.gen
	if now := clock.Now(); now > b.maxTime {
		b.maxTime = now
	}
	b.waiting++
	if b.waiting == b.parties {
		b.waiting = 0
		b.gen++
		b.cond.Broadcast()
	} else {
		for gen == b.gen {
			b.cond.Wait()
		}
	}
	max := b.maxTime
	b.mu.Unlock()
	clock.AdvanceTo(max)
}

// Barrier blocks until every rank has entered it; on exit all ranks'
// clocks agree on the barrier's completion time.
func (r *Rank) Barrier() {
	r.world.barrier.await(r.node.Clock)
}

// Bcast distributes root's data to every rank and returns each rank's
// copy.
func (r *Rank) Bcast(root int, data []byte) ([]byte, error) {
	if r.rank == root {
		for i := 0; i < r.size; i++ {
			if i == root {
				continue
			}
			if err := r.Send(i, tagBcast, data); err != nil {
				return nil, err
			}
		}
		return data, nil
	}
	return r.Recv(root, tagBcast)
}

// AllreduceSum sums one float64 across ranks (gather at rank 0 + bcast).
func (r *Rank) AllreduceSum(v float64) (float64, error) {
	if r.rank == 0 {
		sum := v
		for i := 1; i < r.size; i++ {
			data, err := r.Recv(i, tagReduce)
			if err != nil {
				return 0, err
			}
			sum += decodeF64(data)
		}
		if _, err := r.Bcast(0, encodeF64(sum)); err != nil {
			return 0, err
		}
		return sum, nil
	}
	if err := r.Send(0, tagReduce, encodeF64(v)); err != nil {
		return 0, err
	}
	data, err := r.Recv(0, tagBcast)
	if err != nil {
		return 0, err
	}
	return decodeF64(data), nil
}

const (
	tagBcast  = -100
	tagReduce = -101
	tagCkpt   = -102
)

func encodeF64(v float64) []byte {
	bits := f64bits(v)
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(bits >> (8 * i))
	}
	return b
}

func decodeF64(b []byte) float64 {
	var bits uint64
	for i := 0; i < 8 && i < len(b); i++ {
		bits |= uint64(b[i]) << (8 * i)
	}
	return f64frombits(bits)
}

// GlobalSnapshotStats describes one coordinated checkpoint.
type GlobalSnapshotStats struct {
	LocalTimes    []vtime.Duration // per-rank local snapshot time
	LocalSizes    []int64
	AggregateTime vtime.Duration // reading local snapshots + writing NFS
	GlobalSize    int64
	Total         vtime.Duration // slowest local + aggregation

	// Store-backed snapshots only, set on rank 0: the manifest written
	// and the dedup/compression breakdown of the store Put.
	Manifest string
	StorePut *store.PutStats
}

// CoordinatedCheckpoint takes a global snapshot of an MPI+CheCL job
// (Hursey et al. style, as Open MPI's CPR service does): every rank
// synchronises, writes a local snapshot of its process to its node's
// local disk, and rank 0 aggregates the local snapshots into one global
// snapshot file on the shared NFS. The CheCL instance of rank r.rank must
// be passed as checl.
func (r *Rank) CoordinatedCheckpoint(checl *core.CheCL, globalPath string) (GlobalSnapshotStats, error) {
	var stats GlobalSnapshotStats
	r.Barrier()

	localPath := fmt.Sprintf("%s.local.%d", globalPath, r.rank)
	st, err := checl.Checkpoint(r.node.LocalDisk, localPath)
	if err != nil {
		return stats, fmt.Errorf("mpi: rank %d local snapshot: %w", r.rank, err)
	}
	r.Barrier() // all local snapshots complete

	if r.rank != 0 {
		// Ship the local snapshot to the coordinator.
		data, err := r.node.LocalDisk.ReadFile(r.node.Clock, localPath)
		if err != nil {
			return stats, err
		}
		if err := r.Send(0, tagCkpt, data); err != nil {
			return stats, err
		}
		r.Barrier() // global snapshot complete
		stats.LocalTimes = []vtime.Duration{st.Phases.Total()}
		stats.LocalSizes = []int64{st.FileSize}
		return stats, nil
	}

	// Rank 0: aggregate local snapshots into the global snapshot on NFS.
	sw := vtime.NewStopwatch(r.node.Clock)
	locals := make([][]byte, r.size)
	var err0 error
	locals[0], err0 = r.node.LocalDisk.ReadFile(r.node.Clock, localPath)
	if err0 != nil {
		return stats, err0
	}
	for i := 1; i < r.size; i++ {
		data, err := r.Recv(i, tagCkpt)
		if err != nil {
			return stats, err
		}
		locals[i] = data
	}
	global, err := encodeGlobalSnapshot(locals)
	if err != nil {
		return stats, err
	}
	nfs := r.node.NFS
	if nfs == nil {
		return stats, fmt.Errorf("mpi: no shared NFS for the global snapshot")
	}
	if err := nfs.WriteFile(r.node.Clock, globalPath, global); err != nil {
		return stats, err
	}
	stats.AggregateTime = sw.Elapsed()
	stats.GlobalSize = int64(len(global))
	stats.LocalTimes = []vtime.Duration{st.Phases.Total()}
	stats.LocalSizes = []int64{st.FileSize}
	stats.Total = st.Phases.Total() + stats.AggregateTime
	r.Barrier()
	return stats, nil
}
