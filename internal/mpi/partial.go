package mpi

import (
	"fmt"
	"strings"

	"checl/internal/core"
	"checl/internal/store"
	"checl/internal/vtime"
)

// Partial restart: revive ONE failed rank from its own segment of the
// last committed coordinated checkpoint while the survivors keep running.
//
// Invariants (see DESIGN.md §12 for the full matrix):
//   - Survivors never roll back: their processes, clocks, and inboxes are
//     untouched by a RestoreRank.
//   - The restored rank resumes from the commit cut: its sequence
//     counters and barrier arrival counter are reset to the commit
//     snapshot, every retained log entry addressed to it is re-queued in
//     original send order, and its re-executed sends at or below the
//     death high-water mark are suppressed as duplicates.
//   - Anything outside the single-failure envelope — two ranks down in
//     the same epoch, no committed store-backed generation, a ref naming
//     any other generation (its logs are gone), logging disabled — is a
//     typed *PartialRestoreUnsupported that latches the world failed, so
//     the caller falls back to RestoreGlobalFromStore.

// PartialRestore reports what one successful rank-level restore did.
type PartialRestore struct {
	Rank             int
	Manifest         string // committed generation restored from
	Generation       int    // committed generation count at restore
	SegmentBytes     int64  // bytes fetched for this rank (not the whole snapshot)
	ReplayedMessages int
	ReplayedBytes    int64
	Restart          core.RestartStats
	// RecoveryVtime is the virtual time the restore took on the failed
	// rank's node: segment fetch + image restart + object rebind + replay
	// injection. Survivor stall is accounted separately (RecoveryStats).
	RecoveryVtime vtime.Duration
}

// RecoveryStats aggregates the world's failure/recovery accounting.
type RecoveryStats struct {
	Kills              int
	PartialRestores    int
	SuppressedSends    int // duplicate re-sends dropped after restores
	ReplayedMessages   int
	ReplayedBytes      int64
	SurvivorStallVtime vtime.Duration // barrier time survivors spent parked on recoveries
	SurvivorStalls     int
}

// RecoveryStats reports the accumulated failure/recovery accounting.
func (w *World) RecoveryStats() RecoveryStats {
	w.mu.Lock()
	rec := w.rec
	w.mu.Unlock()
	return RecoveryStats{
		Kills:              rec.kills,
		PartialRestores:    rec.partials,
		SuppressedSends:    rec.suppressed,
		ReplayedMessages:   rec.replayedMsgs,
		ReplayedBytes:      rec.replayedBytes,
		SurvivorStallVtime: w.stall.Total(),
		SurvivorStalls:     w.stall.Events(),
	}
}

// unsupportedLocked latches the typed degraded path: partial restore is
// off the table, the whole world fails, and the caller must fall back to
// a full RestoreGlobalFromStore.
func (w *World) unsupportedLocked(rank int, reason string) error {
	err := &PartialRestoreUnsupported{Rank: rank, Reason: reason}
	w.failLocked(err)
	w.broadcastLocked()
	return err
}

// RestoreRank restores the single failed rank from its per-rank segment
// of the world's last committed coordinated checkpoint in st, replays its
// logged inbound messages, and rejoins it to the world. ref must name the
// committed generation (manifest ID or its bare job name); survivors keep
// running throughout and complete any barrier or collective they were
// parked in once the restored rank catches back up.
//
// On success the restored CheCL instance and a *PartialRestore report are
// returned; the caller typically re-enters its rank body (see
// RunWithRecovery). When partial restore cannot proceed the returned
// error is (or wraps) *PartialRestoreUnsupported and the world is failed:
// kill the remaining rank processes and use RestoreGlobalFromStore.
func (w *World) RestoreRank(st store.Backend, ref string, rank int, opts core.Options) (*core.CheCL, *PartialRestore, error) {
	if rank < 0 || rank >= len(w.ranks) {
		return nil, nil, fmt.Errorf("mpi: restore of invalid rank %d", rank)
	}
	w.mu.Lock()
	if err := w.failed; err != nil {
		w.mu.Unlock()
		return nil, nil, err
	}
	if !w.opts.LogMessages {
		err := w.unsupportedLocked(rank, "message logging disabled")
		w.mu.Unlock()
		return nil, nil, err
	}
	if w.states[rank] != rankDown {
		w.mu.Unlock()
		return nil, nil, fmt.Errorf("mpi: rank %d is not down", rank)
	}
	if w.down > 1 {
		var downs []string
		for i, s := range w.states {
			if s != rankAlive {
				downs = append(downs, fmt.Sprint(i))
			}
		}
		err := w.unsupportedLocked(rank, fmt.Sprintf("ranks %s down in the same epoch", strings.Join(downs, ",")))
		w.mu.Unlock()
		return nil, nil, err
	}
	committed := w.commit.manifest
	if committed == "" {
		err := w.unsupportedLocked(rank, "no committed store-backed generation")
		w.mu.Unlock()
		return nil, nil, err
	}
	// ref must resolve to the committed generation, and is checked against
	// the world's record rather than the store's Latest: sender logs are
	// truncated at every commit (any other generation's in-flight traffic
	// is gone), and an interrupted checkpoint may have Put a newer,
	// never-committed manifest that no log covers.
	job, _, _ := strings.Cut(committed, "@")
	if ref != committed && ref != job {
		err := w.unsupportedLocked(rank, fmt.Sprintf("ref %q does not name the committed generation %s (its message logs were truncated)", ref, committed))
		w.mu.Unlock()
		return nil, nil, err
	}
	w.states[rank] = rankRestoring
	r := w.ranks[rank]
	w.mu.Unlock()

	sw := vtime.NewStopwatch(r.node.Clock)
	seg, _, err := st.GetSegment(r.node.Clock, committed, rankSegment(rank))
	var c *core.CheCL
	var rst core.RestartStats
	if err == nil {
		c, rst, err = core.RestoreImage(r.node, seg, opts)
	}
	if err != nil {
		err = fmt.Errorf("mpi: restoring rank %d from %s: %w", rank, committed, err)
		w.mu.Lock()
		w.states[rank] = rankDown
		w.failLocked(err)
		w.broadcastLocked()
		w.mu.Unlock()
		return nil, nil, err
	}

	w.mu.Lock()
	if ferr := w.failed; ferr != nil {
		// Another rank died (or the world failed) while this restore ran.
		w.states[rank] = rankDown
		w.broadcastLocked()
		w.mu.Unlock()
		c.Detach()
		c.App().Kill()
		return nil, nil, ferr
	}
	r.proc = c.App()
	r.incarnation++
	w.watchRank(r)
	// Resume from the commit cut: sequence counters and barrier arrivals
	// back to the committed snapshot; the death high-water mark (set in
	// rankExited) suppresses the re-execution's duplicate sends.
	copy(w.sendSeq[rank], w.commit.seq[rank])
	w.arrivals[rank] = w.commit.barGen
	msgs, replayBytes := w.replaySetLocked(rank)
	r.queue = msgs
	w.states[rank] = rankAlive
	w.down--
	// The next barrier generation to complete absorbs this recovery's
	// clock inflation; survivors' advance there is accounted as stall.
	w.stallGen = w.barDone
	w.stallRank = rank
	w.rec.partials++
	w.rec.replayedMsgs += len(msgs)
	w.rec.replayedBytes += replayBytes
	gen := w.gen
	w.broadcastLocked()
	w.mu.Unlock()

	pr := &PartialRestore{
		Rank:             rank,
		Manifest:         committed,
		Generation:       gen,
		SegmentBytes:     int64(len(seg)),
		ReplayedMessages: len(msgs),
		ReplayedBytes:    replayBytes,
		Restart:          rst,
		RecoveryVtime:    sw.Elapsed(),
	}
	return c, pr, nil
}
