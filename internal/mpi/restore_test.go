package mpi

import (
	"encoding/binary"
	"math"
	"testing"

	"checl/internal/core"
	"checl/internal/ocl"
)

// TestRestoreGlobalRoundtrip checkpoints a 2-rank CheCL job into a global
// snapshot and restores both ranks from it, verifying each rank's device
// state survived.
func TestRestoreGlobalRoundtrip(t *testing.T) {
	cl := cluster(2)
	w, _ := NewWorld(cl, 2)
	const src = `
__kernel void fill(__global float* x, float v, uint n) {
    size_t i = get_global_id(0);
    if (i < n) x[i] = v + (float)i;
}`
	type rankState struct {
		q   ocl.CommandQueue
		buf ocl.Mem
	}
	states := make([]rankState, 2)
	err := w.Run(func(r *Rank) error {
		c, err := core.Attach(r.Process(), core.Options{})
		if err != nil {
			return err
		}
		// The CheCL instance dies with the source incarnation; only the
		// global snapshot survives.
		plats, _ := c.GetPlatformIDs()
		devs, _ := c.GetDeviceIDs(plats[0], ocl.DeviceTypeGPU)
		ctx, _ := c.CreateContext(devs)
		q, _ := c.CreateCommandQueue(ctx, devs[0], 0)
		prog, _ := c.CreateProgramWithSource(ctx, src)
		if err := c.BuildProgram(prog, ""); err != nil {
			return err
		}
		k, _ := c.CreateKernel(prog, "fill")
		buf, _ := c.CreateBuffer(ctx, ocl.MemReadWrite, 4*64, nil)
		h := make([]byte, 8)
		binary.LittleEndian.PutUint64(h, uint64(buf))
		if err := c.SetKernelArg(k, 0, 8, h); err != nil {
			return err
		}
		v := make([]byte, 4)
		binary.LittleEndian.PutUint32(v, math.Float32bits(float32(100*(r.Rank()+1))))
		if err := c.SetKernelArg(k, 1, 4, v); err != nil {
			return err
		}
		n := make([]byte, 4)
		binary.LittleEndian.PutUint32(n, 64)
		if err := c.SetKernelArg(k, 2, 4, n); err != nil {
			return err
		}
		if _, err := c.EnqueueNDRangeKernel(q, k, 1, [3]int{}, [3]int{64}, [3]int{64}, nil); err != nil {
			return err
		}
		if err := c.Finish(q); err != nil {
			return err
		}
		states[r.Rank()] = rankState{q: q, buf: buf}
		if _, err := r.CoordinatedCheckpoint(c, "job.global"); err != nil {
			return err
		}
		// Simulate the whole job dying.
		c.Proxy().Kill()
		r.Process().Kill()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	restored, err := RestoreGlobal(cl, "job.global", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != 2 {
		t.Fatalf("restored %d ranks, want 2", len(restored))
	}
	for rank, c := range restored {
		data, _, err := c.EnqueueReadBuffer(states[rank].q, states[rank].buf, true, 0, 4*64, nil)
		if err != nil {
			t.Fatalf("rank %d read after restore: %v", rank, err)
		}
		for i := 0; i < 64; i++ {
			got := math.Float32frombits(binary.LittleEndian.Uint32(data[4*i:]))
			want := float32(100*(rank+1)) + float32(i)
			if got != want {
				t.Fatalf("rank %d: buf[%d] = %v, want %v", rank, i, got, want)
			}
		}
		c.Detach()
	}
}

func TestRestoreGlobalErrors(t *testing.T) {
	cl := cluster(1)
	if _, err := RestoreGlobal(cl, "missing.global", core.Options{}); err == nil {
		t.Error("restore from missing snapshot should fail")
	}
	cl.NFS.WriteFile(cl.Nodes[0].Clock, "garbage.global", []byte("nope"))
	if _, err := RestoreGlobal(cl, "garbage.global", core.Options{}); err == nil {
		t.Error("restore from garbage should fail")
	}
}
