package mpi

import (
	"sort"

	"checl/internal/vtime"
)

// Sender-side message logging. Every Send between two committed
// coordinated generations is appended to the (sender, receiver) channel
// log with a monotone per-channel sequence number. The log is what makes
// a single-rank restore possible without touching the survivors: the
// failed rank's inbound traffic since the last commit is replayed from
// the logs in sequence order, and its re-executed outbound traffic is
// suppressed by sequence number.
//
// Logs are truncated at every committed generation — but only entries the
// receiver has already consumed. An entry still sitting unconsumed in a
// receiver's inbox at commit time crosses the commit cut (it was sent
// before the cut, will be received after it) and must survive truncation,
// or a post-commit death of the receiver would lose it.

// logEntry is one logged send.
type logEntry struct {
	Seq      int64
	Tag      int
	SentAt   vtime.Time
	Data     []byte
	Consumed bool // matched by a Recv on the receiver
}

// chanLog is the log of one (sender, receiver) channel. Entries are in
// ascending Seq order.
type chanLog struct {
	entries []logEntry
	bytes   int64
}

// logCounters aggregates log accounting across all channels.
type logCounters struct {
	entries          int
	bytes            int64
	highWaterEntries int
	highWaterBytes   int64
	truncatedEntries int
	truncatedBytes   int64
}

// LogStats reports the message-log footprint: current size, the largest
// it has ever been (high-water), and how much commit truncation has
// reclaimed. Bounded growth shows up as a stable high-water mark across
// generations.
type LogStats struct {
	Entries          int
	Bytes            int64
	HighWaterEntries int
	HighWaterBytes   int64
	TruncatedEntries int
	TruncatedBytes   int64
}

// LogStats reports the current message-log accounting.
func (w *World) LogStats() LogStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return LogStats{
		Entries:          w.logStats.entries,
		Bytes:            w.logStats.bytes,
		HighWaterEntries: w.logStats.highWaterEntries,
		HighWaterBytes:   w.logStats.highWaterBytes,
		TruncatedEntries: w.logStats.truncatedEntries,
		TruncatedBytes:   w.logStats.truncatedBytes,
	}
}

// RankLogBytes reports the current logged outbound bytes per sender rank
// (tooling view).
func (w *World) RankLogBytes() []int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]int64, len(w.ranks))
	for from := range w.logs {
		for to := range w.logs[from] {
			out[from] += w.logs[from][to].bytes
		}
	}
	return out
}

func (w *World) appendLogLocked(from, to int, e logEntry) {
	cl := &w.logs[from][to]
	cl.entries = append(cl.entries, e)
	cl.bytes += int64(len(e.Data))
	w.logStats.entries++
	w.logStats.bytes += int64(len(e.Data))
	if w.logStats.entries > w.logStats.highWaterEntries {
		w.logStats.highWaterEntries = w.logStats.entries
	}
	if w.logStats.bytes > w.logStats.highWaterBytes {
		w.logStats.highWaterBytes = w.logStats.bytes
	}
}

// findLogEntry looks one logged send up by channel and sequence number.
func (w *World) findLogEntry(from, to int, seq int64) *logEntry {
	cl := &w.logs[from][to]
	i := sort.Search(len(cl.entries), func(i int) bool { return cl.entries[i].Seq >= seq })
	if i < len(cl.entries) && cl.entries[i].Seq == seq {
		return &cl.entries[i]
	}
	return nil
}

// markConsumedLocked records that the receiver matched the logged send,
// making the entry eligible for truncation at the next commit.
func (w *World) markConsumedLocked(from, to int, seq int64) {
	if ent := w.findLogEntry(from, to, seq); ent != nil {
		ent.Consumed = true
	}
}

// truncateLogsLocked drops every consumed entry at a generation commit.
// Unconsumed entries — messages in flight across the commit cut — are
// retained for a possible post-commit replay.
func (w *World) truncateLogsLocked() {
	for from := range w.logs {
		for to := range w.logs[from] {
			cl := &w.logs[from][to]
			if len(cl.entries) == 0 {
				continue
			}
			kept := cl.entries[:0]
			for _, e := range cl.entries {
				if e.Consumed {
					w.logStats.truncatedEntries++
					w.logStats.truncatedBytes += int64(len(e.Data))
					w.logStats.entries--
					w.logStats.bytes -= int64(len(e.Data))
					cl.bytes -= int64(len(e.Data))
					continue
				}
				kept = append(kept, e)
			}
			cl.entries = kept
		}
	}
}

// replaySetLocked assembles the inbound replay queue for a restored rank:
// every retained log entry addressed to it, across all senders, ordered
// deterministically by original send time (then sender, then sequence).
// Per-channel sequence order is preserved — SentAt is monotone per
// sender. Consumed flags are reset: the restored rank re-executes from
// the commit cut and will consume them again.
func (w *World) replaySetLocked(rank int) ([]message, int64) {
	var msgs []message
	var bytes int64
	for from := range w.logs {
		cl := &w.logs[from][rank]
		for i := range cl.entries {
			e := &cl.entries[i]
			e.Consumed = false
			msgs = append(msgs, message{
				from:   from,
				tag:    e.Tag,
				seq:    e.Seq,
				data:   append([]byte(nil), e.Data...),
				sentAt: e.SentAt,
			})
			bytes += int64(len(e.Data))
		}
	}
	sort.SliceStable(msgs, func(i, j int) bool {
		if msgs[i].sentAt != msgs[j].sentAt {
			return msgs[i].sentAt < msgs[j].sentAt
		}
		if msgs[i].from != msgs[j].from {
			return msgs[i].from < msgs[j].from
		}
		return msgs[i].seq < msgs[j].seq
	})
	return msgs, bytes
}
