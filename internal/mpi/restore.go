package mpi

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"checl/internal/core"
	"checl/internal/proc"
)

// Global-snapshot format and the restart path: a global snapshot is the
// ordered list of per-rank local snapshots, so a failed MPI job can be
// resumed on (possibly different) cluster nodes — the Open MPI CPR
// service behaviour (Hursey et al.) the paper builds Fig. 6 on.

// globalSnapshot is the on-NFS representation.
type globalSnapshot struct {
	Locals [][]byte // rank-ordered local snapshot files
}

func encodeGlobalSnapshot(locals [][]byte) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(globalSnapshot{Locals: locals}); err != nil {
		return nil, fmt.Errorf("mpi: encoding global snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeGlobalSnapshot(data []byte) ([][]byte, error) {
	var gs globalSnapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&gs); err != nil {
		return nil, fmt.Errorf("mpi: decoding global snapshot: %w", err)
	}
	return gs.Locals, nil
}

// RestoreGlobal restarts an MPI+CheCL job from a global snapshot on the
// cluster's NFS: rank i's local snapshot is placed on node i%len(nodes)
// and restored there with CheCL. It returns one restored CheCL instance
// per rank, in rank order.
func RestoreGlobal(cluster *proc.Cluster, globalPath string, opts core.Options) ([]*core.CheCL, error) {
	if len(cluster.Nodes) == 0 {
		return nil, fmt.Errorf("mpi: cluster has no nodes")
	}
	coord := cluster.Nodes[0]
	data, err := cluster.NFS.ReadFile(coord.Clock, globalPath)
	if err != nil {
		return nil, err
	}
	locals, err := decodeGlobalSnapshot(data)
	if err != nil {
		return nil, err
	}
	restored := make([]*core.CheCL, len(locals))
	for rank, local := range locals {
		node := cluster.Nodes[rank%len(cluster.Nodes)]
		localPath := fmt.Sprintf("%s.restore.%d", globalPath, rank)
		if err := node.LocalDisk.WriteFile(node.Clock, localPath, local); err != nil {
			return nil, err
		}
		c, _, err := core.Restore(node, node.LocalDisk, localPath, opts)
		if err != nil {
			return nil, fmt.Errorf("mpi: restoring rank %d: %w", rank, err)
		}
		restored[rank] = c
	}
	return restored, nil
}
