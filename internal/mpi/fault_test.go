package mpi

import (
	"testing"

	"checl/internal/core"
	"checl/internal/ocl"
)

// TestFaultRankProxyCrashBetweenCheckpoints kills one rank's API proxy
// between two coordinated checkpoints. AutoFailover absorbs the crash on
// that rank (the MPI layer never notices), the second global checkpoint
// still commits, and a global restore yields the post-crash state on
// every rank — handles stay stable across both failover and restore.
func TestFaultRankProxyCrashBetweenCheckpoints(t *testing.T) {
	cl := cluster(2)
	w, err := NewWorld(cl, 2)
	if err != nil {
		t.Fatal(err)
	}
	const n = 128
	type rankState struct {
		q   ocl.CommandQueue
		buf ocl.Mem
	}
	states := make([]rankState, 2)
	pattern := func(rank, gen int) []byte {
		out := make([]byte, n)
		for i := range out {
			out[i] = byte(rank*100 + gen*10 + i)
		}
		return out
	}
	err = w.Run(func(r *Rank) error {
		c, err := core.Attach(r.Process(), core.Options{
			AutoFailover: true,
			Shadow:       core.ShadowFull,
		})
		if err != nil {
			return err
		}
		plats, _ := c.GetPlatformIDs()
		devs, _ := c.GetDeviceIDs(plats[0], ocl.DeviceTypeGPU)
		ctx, err := c.CreateContext(devs)
		if err != nil {
			return err
		}
		q, err := c.CreateCommandQueue(ctx, devs[0], 0)
		if err != nil {
			return err
		}
		buf, err := c.CreateBuffer(ctx, ocl.MemReadWrite, n, nil)
		if err != nil {
			return err
		}
		states[r.Rank()] = rankState{q: q, buf: buf}

		if _, err := c.EnqueueWriteBuffer(q, buf, true, 0, pattern(r.Rank(), 1), nil); err != nil {
			return err
		}
		if _, err := r.CoordinatedCheckpoint(c, "job.global"); err != nil {
			return err
		}

		// Between checkpoints, rank 1's proxy crashes.
		if r.Rank() == 1 {
			c.Proxy().Kill()
		}
		// Both ranks keep computing; rank 1's write triggers a transparent
		// failover under the hood.
		if _, err := c.EnqueueWriteBuffer(q, buf, true, 0, pattern(r.Rank(), 2), nil); err != nil {
			return err
		}
		if r.Rank() == 1 && c.FailoverStats().Failovers != 1 {
			t.Errorf("rank 1: failovers = %d, want 1", c.FailoverStats().Failovers)
		}
		if r.Rank() == 0 && c.FailoverStats().Failovers != 0 {
			t.Errorf("rank 0: failovers = %d, want 0", c.FailoverStats().Failovers)
		}

		// The second coordinated checkpoint must capture the post-crash
		// state from the failed-over proxy.
		if _, err := r.CoordinatedCheckpoint(c, "job.global"); err != nil {
			return err
		}
		// Whole job dies; only the global snapshot survives.
		c.Proxy().Kill()
		r.Process().Kill()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	restored, err := RestoreGlobal(cl, "job.global", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != 2 {
		t.Fatalf("restored %d ranks, want 2", len(restored))
	}
	for rank, c := range restored {
		data, _, err := c.EnqueueReadBuffer(states[rank].q, states[rank].buf, true, 0, n, nil)
		if err != nil {
			t.Fatalf("rank %d read after restore: %v", rank, err)
		}
		want := pattern(rank, 2)
		for i := range want {
			if data[i] != want[i] {
				t.Fatalf("rank %d: buf[%d] = %d, want %d (post-crash generation)", rank, i, data[i], want[i])
			}
		}
		c.Detach()
	}
}
