package mpi

import (
	"encoding/binary"
	"math"
	"sync"
	"testing"

	"checl/internal/core"
	"checl/internal/ocl"
	"checl/internal/store"
	"checl/internal/vtime"
)

// TestCoordinatedCheckpointToStore takes two successive store-backed
// global snapshots of a 2-rank job and restores both ranks from the
// second. Successive snapshots of the unchanged job must deduplicate.
func TestCoordinatedCheckpointToStore(t *testing.T) {
	cl := cluster(2)
	st := store.New(cl.NFS, store.Config{})
	w, _ := NewWorld(cl, 2)
	const src = `
__kernel void fill(__global float* x, float v, uint n) {
    size_t i = get_global_id(0);
    if (i < n) x[i] = v + (float)i;
}`
	type rankState struct {
		q   ocl.CommandQueue
		buf ocl.Mem
	}
	states := make([]rankState, 2)
	var mu sync.Mutex
	puts := make([]*store.PutStats, 0, 2)
	err := w.Run(func(r *Rank) error {
		c, err := core.Attach(r.Process(), core.Options{Incremental: true})
		if err != nil {
			return err
		}
		plats, _ := c.GetPlatformIDs()
		devs, _ := c.GetDeviceIDs(plats[0], ocl.DeviceTypeGPU)
		ctx, _ := c.CreateContext(devs)
		q, _ := c.CreateCommandQueue(ctx, devs[0], 0)
		prog, _ := c.CreateProgramWithSource(ctx, src)
		if err := c.BuildProgram(prog, ""); err != nil {
			return err
		}
		k, _ := c.CreateKernel(prog, "fill")
		buf, _ := c.CreateBuffer(ctx, ocl.MemReadWrite, 4*1024, nil)
		h := make([]byte, 8)
		binary.LittleEndian.PutUint64(h, uint64(buf))
		if err := c.SetKernelArg(k, 0, 8, h); err != nil {
			return err
		}
		v := make([]byte, 4)
		binary.LittleEndian.PutUint32(v, math.Float32bits(float32(100*(r.Rank()+1))))
		if err := c.SetKernelArg(k, 1, 4, v); err != nil {
			return err
		}
		n := make([]byte, 4)
		binary.LittleEndian.PutUint32(n, 1024)
		if err := c.SetKernelArg(k, 2, 4, n); err != nil {
			return err
		}
		if _, err := c.EnqueueNDRangeKernel(q, k, 1, [3]int{}, [3]int{1024}, [3]int{64}, nil); err != nil {
			return err
		}
		if err := c.Finish(q); err != nil {
			return err
		}
		states[r.Rank()] = rankState{q: q, buf: buf}

		gs1, err := r.CoordinatedCheckpointToStore(c, st, "mpijob")
		if err != nil {
			return err
		}
		gs2, err := r.CoordinatedCheckpointToStore(c, st, "mpijob")
		if err != nil {
			return err
		}
		if r.Rank() == 0 {
			mu.Lock()
			puts = append(puts, gs1.StorePut, gs2.StorePut)
			mu.Unlock()
		}
		c.Proxy().Kill()
		r.Process().Kill()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	if len(puts) != 2 || puts[0] == nil || puts[1] == nil {
		t.Fatalf("rank 0 store puts = %v", puts)
	}
	if puts[0].Manifest != "mpijob@1" || puts[1].Manifest != "mpijob@2" {
		t.Errorf("manifests = %s, %s", puts[0].Manifest, puts[1].Manifest)
	}
	if puts[1].NewBytes > puts[0].NewBytes/2 {
		t.Errorf("2nd global snapshot uploaded %d new bytes, 1st uploaded %d — dedup below 50%%",
			puts[1].NewBytes, puts[0].NewBytes)
	}

	restored, deg, err := RestoreGlobalFromStore(cl, st, "mpijob", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if deg != nil {
		t.Fatalf("clean restore reported degradation: %v", deg)
	}
	if len(restored) != 2 {
		t.Fatalf("restored %d ranks, want 2", len(restored))
	}
	for rank, c := range restored {
		data, _, err := c.EnqueueReadBuffer(states[rank].q, states[rank].buf, true, 0, 4*1024, nil)
		if err != nil {
			t.Fatalf("rank %d read after restore: %v", rank, err)
		}
		for i := 0; i < 1024; i++ {
			got := math.Float32frombits(binary.LittleEndian.Uint32(data[4*i:]))
			want := float32(100*(rank+1)) + float32(i)
			if got != want {
				t.Fatalf("rank %d: buf[%d] = %v, want %v", rank, i, got, want)
			}
		}
		c.Detach()
	}
}

// TestRestoreGlobalFromStoreDegraded damages the newest global snapshot
// past repair (no replicas) and checks the restore walks back to the
// previous generation with a typed report — a globally consistent older
// state, never a partial or silently wrong one.
func TestRestoreGlobalFromStoreDegraded(t *testing.T) {
	cl := cluster(1)
	st := store.New(cl.NFS, store.Config{})
	w, _ := NewWorld(cl, 1)
	const src = `
__kernel void fill(__global float* x, float v, uint n) {
    size_t i = get_global_id(0);
    if (i < n) x[i] = v + (float)i;
}`
	var q ocl.CommandQueue
	var buf ocl.Mem
	err := w.Run(func(r *Rank) error {
		c, err := core.Attach(r.Process(), core.Options{})
		if err != nil {
			return err
		}
		plats, _ := c.GetPlatformIDs()
		devs, _ := c.GetDeviceIDs(plats[0], ocl.DeviceTypeGPU)
		ctx, _ := c.CreateContext(devs)
		cq, _ := c.CreateCommandQueue(ctx, devs[0], 0)
		prog, _ := c.CreateProgramWithSource(ctx, src)
		if err := c.BuildProgram(prog, ""); err != nil {
			return err
		}
		k, _ := c.CreateKernel(prog, "fill")
		b, _ := c.CreateBuffer(ctx, ocl.MemReadWrite, 4*1024, nil)
		h := make([]byte, 8)
		binary.LittleEndian.PutUint64(h, uint64(b))
		if err := c.SetKernelArg(k, 0, 8, h); err != nil {
			return err
		}
		v := make([]byte, 4)
		binary.LittleEndian.PutUint32(v, math.Float32bits(100))
		if err := c.SetKernelArg(k, 1, 4, v); err != nil {
			return err
		}
		n := make([]byte, 4)
		binary.LittleEndian.PutUint32(n, 1024)
		if err := c.SetKernelArg(k, 2, 4, n); err != nil {
			return err
		}
		if _, err := c.EnqueueNDRangeKernel(cq, k, 1, [3]int{}, [3]int{1024}, [3]int{64}, nil); err != nil {
			return err
		}
		if err := c.Finish(cq); err != nil {
			return err
		}
		q, buf = cq, b
		for i := 0; i < 2; i++ {
			if _, err := r.CoordinatedCheckpointToStore(c, st, "dmj"); err != nil {
				return err
			}
		}
		c.Proxy().Kill()
		r.Process().Kill()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Rot the newest generation's manifest frame in place.
	clock := cl.Nodes[0].Clock
	const manPath = "ckptstore/manifests/dmj/00000002"
	frame, err := cl.NFS.ReadFile(clock, manPath)
	if err != nil {
		t.Fatal(err)
	}
	frame[len(frame)/2] ^= 0xFF
	if err := cl.NFS.WriteFile(clock, manPath, frame); err != nil {
		t.Fatal(err)
	}

	restored, deg, err := RestoreGlobalFromStore(cl, st, "dmj", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if deg == nil || deg.Restored != "dmj@1" || len(deg.Skipped) != 1 || deg.Skipped[0].ID != "dmj@2" {
		t.Fatalf("degradation report = %+v", deg)
	}
	if len(restored) != 1 {
		t.Fatalf("restored %d ranks, want 1", len(restored))
	}
	data, _, err := restored[0].EnqueueReadBuffer(q, buf, true, 0, 4*1024, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1024; i++ {
		got := math.Float32frombits(binary.LittleEndian.Uint32(data[4*i:]))
		if want := 100 + float32(i); got != want {
			t.Fatalf("buf[%d] = %v, want %v", i, got, want)
		}
	}
	restored[0].Detach()
}

func TestRestoreGlobalFromStoreErrors(t *testing.T) {
	cl := cluster(1)
	st := store.New(cl.NFS, store.Config{})
	if _, _, err := RestoreGlobalFromStore(cl, st, "missing", core.Options{}); err == nil {
		t.Error("restore from missing snapshot should fail")
	}
}

// TestCoordinatedSpeculativeCheckpoint takes a store-backed global
// snapshot of a 2-rank job whose ranks run with SpeculativeDrain: each
// rank's drain runs as a speculative epoch begun after the coordination
// barrier, the per-rank stall lands in LocalStalls, and the restored
// ranks are bit-identical.
func TestCoordinatedSpeculativeCheckpoint(t *testing.T) {
	cl := cluster(2)
	st := store.New(cl.NFS, store.Config{})
	w, _ := NewWorld(cl, 2)
	const src = `
__kernel void fill(__global float* x, float v, uint n) {
    size_t i = get_global_id(0);
    if (i < n) x[i] = v + (float)i;
}`
	type rankState struct {
		q   ocl.CommandQueue
		buf ocl.Mem
	}
	states := make([]rankState, 2)
	var mu sync.Mutex
	stalls := make([]vtime.Duration, 0, 2)
	err := w.Run(func(r *Rank) error {
		c, err := core.Attach(r.Process(), core.Options{
			Incremental: true, DrainWorkers: 4, SpeculativeDrain: true,
		})
		if err != nil {
			return err
		}
		plats, _ := c.GetPlatformIDs()
		devs, _ := c.GetDeviceIDs(plats[0], ocl.DeviceTypeGPU)
		ctx, _ := c.CreateContext(devs)
		q, _ := c.CreateCommandQueue(ctx, devs[0], 0)
		prog, _ := c.CreateProgramWithSource(ctx, src)
		if err := c.BuildProgram(prog, ""); err != nil {
			return err
		}
		k, _ := c.CreateKernel(prog, "fill")
		buf, _ := c.CreateBuffer(ctx, ocl.MemReadWrite, 4*1024, nil)
		h := make([]byte, 8)
		binary.LittleEndian.PutUint64(h, uint64(buf))
		if err := c.SetKernelArg(k, 0, 8, h); err != nil {
			return err
		}
		v := make([]byte, 4)
		binary.LittleEndian.PutUint32(v, math.Float32bits(float32(100*(r.Rank()+1))))
		if err := c.SetKernelArg(k, 1, 4, v); err != nil {
			return err
		}
		n := make([]byte, 4)
		binary.LittleEndian.PutUint32(n, 1024)
		if err := c.SetKernelArg(k, 2, 4, n); err != nil {
			return err
		}
		if _, err := c.EnqueueNDRangeKernel(q, k, 1, [3]int{}, [3]int{1024}, [3]int{64}, nil); err != nil {
			return err
		}
		if err := c.Finish(q); err != nil {
			return err
		}
		states[r.Rank()] = rankState{q: q, buf: buf}

		gs, err := r.CoordinatedCheckpointToStore(c, st, "specjob")
		if err != nil {
			return err
		}
		mu.Lock()
		stalls = append(stalls, gs.LocalStalls...)
		mu.Unlock()
		c.Proxy().Kill()
		r.Process().Kill()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	if len(stalls) != 2 {
		t.Fatalf("collected %d rank stalls, want 2", len(stalls))
	}
	for i, s := range stalls {
		if s <= 0 {
			t.Errorf("rank stall %d = %s, want > 0 (write phase is app-visible)", i, s)
		}
	}

	restored, deg, err := RestoreGlobalFromStore(cl, st, "specjob", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if deg != nil {
		t.Fatalf("clean restore reported degradation: %v", deg)
	}
	for rank, c := range restored {
		data, _, err := c.EnqueueReadBuffer(states[rank].q, states[rank].buf, true, 0, 4*1024, nil)
		if err != nil {
			t.Fatalf("rank %d read after restore: %v", rank, err)
		}
		for i := 0; i < 1024; i++ {
			got := math.Float32frombits(binary.LittleEndian.Uint32(data[4*i:]))
			want := float32(100*(rank+1)) + float32(i)
			if got != want {
				t.Fatalf("rank %d: buf[%d] = %v, want %v", rank, i, got, want)
			}
		}
		c.Detach()
	}
}
