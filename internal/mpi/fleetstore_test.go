package mpi

import (
	"encoding/binary"
	"fmt"
	"math"
	"testing"

	"checl/internal/core"
	"checl/internal/hw"
	"checl/internal/ocl"
	"checl/internal/proc"
	"checl/internal/store"
	"checl/internal/vtime"
)

// TestGlobalSnapshotThroughErasureFleet takes a coordinated global
// snapshot of a 2-rank job into an erasure-coded store fleet, then
// restores both ranks with m store nodes down — the global restore must
// be clean (no generation fallback) and every buffer bit-identical. The
// per-rank segment read the partial restart uses must also survive the
// same loss.
func TestGlobalSnapshotThroughErasureFleet(t *testing.T) {
	cl := cluster(2)
	nodes := make([]store.FleetNode, 6)
	states := make([]*proc.NodeState, 6)
	for i := range nodes {
		name := fmt.Sprintf("ck-%02d", i)
		fs := proc.NewFS(name, hw.TableISpec().LocalDisk)
		states[i] = proc.NewNodeState(name)
		fs.SetNodeState(states[i])
		nodes[i] = store.FleetNode{Name: name, FS: fs}
	}
	fl, err := store.NewFleet(nodes, store.FleetConfig{
		Store: store.Config{MinChunk: 1 << 10, AvgChunk: 4 << 10, MaxChunk: 16 << 10},
	})
	if err != nil {
		t.Fatal(err)
	}

	w, _ := NewWorld(cl, 2)
	const src = `
__kernel void fill(__global float* x, float v, uint n) {
    size_t i = get_global_id(0);
    if (i < n) x[i] = v + (float)i;
}`
	type rankState struct {
		q   ocl.CommandQueue
		buf ocl.Mem
	}
	rs := make([]rankState, 2)
	err = w.Run(func(r *Rank) error {
		c, err := core.Attach(r.Process(), core.Options{Incremental: true})
		if err != nil {
			return err
		}
		plats, _ := c.GetPlatformIDs()
		devs, _ := c.GetDeviceIDs(plats[0], ocl.DeviceTypeGPU)
		ctx, _ := c.CreateContext(devs)
		q, _ := c.CreateCommandQueue(ctx, devs[0], 0)
		prog, _ := c.CreateProgramWithSource(ctx, src)
		if err := c.BuildProgram(prog, ""); err != nil {
			return err
		}
		k, _ := c.CreateKernel(prog, "fill")
		buf, _ := c.CreateBuffer(ctx, ocl.MemReadWrite, 4*1024, nil)
		h := make([]byte, 8)
		binary.LittleEndian.PutUint64(h, uint64(buf))
		if err := c.SetKernelArg(k, 0, 8, h); err != nil {
			return err
		}
		v := make([]byte, 4)
		binary.LittleEndian.PutUint32(v, math.Float32bits(float32(10*(r.Rank()+1))))
		if err := c.SetKernelArg(k, 1, 4, v); err != nil {
			return err
		}
		n := make([]byte, 4)
		binary.LittleEndian.PutUint32(n, 1024)
		if err := c.SetKernelArg(k, 2, 4, n); err != nil {
			return err
		}
		if _, err := c.EnqueueNDRangeKernel(q, k, 1, [3]int{}, [3]int{1024}, [3]int{64}, nil); err != nil {
			return err
		}
		if err := c.Finish(q); err != nil {
			return err
		}
		rs[r.Rank()] = rankState{q: q, buf: buf}
		if _, err := r.CoordinatedCheckpointToStore(c, fl, "mpifleet"); err != nil {
			return err
		}
		c.Proxy().Kill()
		r.Process().Kill()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Two store nodes down: both the global restore and the partial
	// restart's per-rank segment read must still work, bit-identical.
	states[2].SetDown(true)
	states[5].SetDown(true)
	defer func() {
		states[2].SetDown(false)
		states[5].SetDown(false)
	}()

	restored, deg, err := RestoreGlobalFromStore(cl, fl, "mpifleet", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if deg != nil {
		t.Fatalf("restore with m nodes down fell back: %v", deg)
	}
	for rank, c := range restored {
		data, _, err := c.EnqueueReadBuffer(rs[rank].q, rs[rank].buf, true, 0, 4*1024, nil)
		if err != nil {
			t.Fatalf("rank %d read after restore: %v", rank, err)
		}
		for i := 0; i < 1024; i++ {
			got := math.Float32frombits(binary.LittleEndian.Uint32(data[4*i:]))
			want := float32(10*(rank+1)) + float32(i)
			if got != want {
				t.Fatalf("rank %d: buf[%d] = %v, want %v", rank, i, got, want)
			}
		}
		c.Detach()
	}

	if seg, _, err := fl.GetSegment(vtime.NewClock(), "mpifleet", "rank/00000"); err != nil {
		t.Fatalf("per-rank segment read with m nodes down: %v", err)
	} else if len(seg) == 0 {
		t.Fatal("per-rank segment came back empty")
	}
}
