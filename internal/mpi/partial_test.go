package mpi

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"checl/internal/core"
	"checl/internal/ocl"
	"checl/internal/proc"
	"checl/internal/store"
)

// The partial-restart scenario: an epoch-structured MPI+CheCL app where
// every epoch does a ring exchange, a Bcast, an AllreduceSum, a Barrier,
// a buffer write, and a coordinated store checkpoint. A restored rank
// resumes at the world's committed generation and re-executes from there;
// survivors run their epochs exactly once.

func ringMsg(rank, epoch, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(rank*31 + epoch*7 + i)
	}
	return out
}

func bufPattern(rank, epoch, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(rank*100 + epoch*10 + i)
	}
	return out
}

type scenario struct {
	cl     *proc.Cluster
	st     *store.Store
	w      *World
	job    string
	epochs int
	bufN   int

	checls []*core.CheCL
	qs     []ocl.CommandQueue
	bufs   []ocl.Mem

	sums     [][]float64
	bcasts   [][][]byte
	finals   [][]byte
	bodyRuns []int
	// ops[rank] after the first committed generation and at body end,
	// for calibrating deterministic kill positions.
	opsCommit1 []int
	opsTotal   []int

	mu       sync.Mutex
	partials []*PartialRestore
}

func newScenario(ranks, epochs int, opts Options) *scenario {
	cl := cluster(ranks)
	s := &scenario{
		cl:         cl,
		st:         store.New(cl.NFS, store.Config{}),
		job:        "pjob",
		epochs:     epochs,
		bufN:       64 << 10,
		checls:     make([]*core.CheCL, ranks),
		qs:         make([]ocl.CommandQueue, ranks),
		bufs:       make([]ocl.Mem, ranks),
		sums:       make([][]float64, ranks),
		bcasts:     make([][][]byte, ranks),
		finals:     make([][]byte, ranks),
		bodyRuns:   make([]int, ranks),
		opsCommit1: make([]int, ranks),
		opsTotal:   make([]int, ranks),
	}
	for i := 0; i < ranks; i++ {
		s.sums[i] = make([]float64, epochs)
		s.bcasts[i] = make([][]byte, epochs)
	}
	w, err := NewWorldWithOptions(cl, ranks, opts)
	if err != nil {
		panic(err)
	}
	s.w = w
	return s
}

func (s *scenario) body(r *Rank) error {
	rank := r.Rank()
	s.bodyRuns[rank]++
	if s.checls[rank] == nil {
		c, err := core.Attach(r.Process(), core.Options{})
		if err != nil {
			return err
		}
		plats, _ := c.GetPlatformIDs()
		devs, _ := c.GetDeviceIDs(plats[0], ocl.DeviceTypeGPU)
		ctx, err := c.CreateContext(devs)
		if err != nil {
			return err
		}
		q, err := c.CreateCommandQueue(ctx, devs[0], 0)
		if err != nil {
			return err
		}
		buf, err := c.CreateBuffer(ctx, ocl.MemReadWrite, int64(s.bufN), nil)
		if err != nil {
			return err
		}
		if _, err := c.EnqueueWriteBuffer(q, buf, true, 0, bufPattern(rank, 0, s.bufN), nil); err != nil {
			return err
		}
		s.checls[rank], s.qs[rank], s.bufs[rank] = c, q, buf
	}
	size := r.Size()
	for e := r.World().Generation(); e < s.epochs; e++ {
		c := s.checls[rank]
		if size > 1 {
			next, prev := (rank+1)%size, (rank+size-1)%size
			if err := r.Send(next, 1, ringMsg(rank, e, 64)); err != nil {
				return err
			}
			got, err := r.Recv(prev, 1)
			if err != nil {
				return err
			}
			if !bytes.Equal(got, ringMsg(prev, e, 64)) {
				return fmt.Errorf("rank %d epoch %d: ring payload mismatch", rank, e)
			}
		}
		bc, err := r.Bcast(0, []byte{byte(e), 0xB0, byte(size)})
		if err != nil {
			return err
		}
		s.bcasts[rank][e] = append([]byte(nil), bc...)
		sum, err := r.AllreduceSum(float64((rank + 1) * (e + 1)))
		if err != nil {
			return err
		}
		s.sums[rank][e] = sum
		if err := r.Barrier(); err != nil {
			return err
		}
		if _, err := c.EnqueueWriteBuffer(s.qs[rank], s.bufs[rank], true, 0, bufPattern(rank, e+1, s.bufN), nil); err != nil {
			return err
		}
		if _, err := r.CoordinatedCheckpointToStore(c, s.st, s.job); err != nil {
			return err
		}
		if e == 0 {
			s.opsCommit1[rank] = r.World().OpCount(rank)
		}
	}
	data, _, err := s.checls[rank].EnqueueReadBuffer(s.qs[rank], s.bufs[rank], true, 0, int64(s.bufN), nil)
	if err != nil {
		return err
	}
	s.finals[rank] = data
	s.opsTotal[rank] = r.World().OpCount(rank)
	return nil
}

// recoverRank is the standard onKill handler: partial-restore the victim
// from the committed generation and swap in the restored CheCL.
func (s *scenario) recoverRank(r *Rank, _ *RankKilled) error {
	c, pr, err := s.w.RestoreRank(s.st, s.job, r.Rank(), core.Options{})
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.checls[r.Rank()] = c
	s.partials = append(s.partials, pr)
	s.mu.Unlock()
	return nil
}

// assertMatchesBaseline checks bit-identity of every observable output
// against a fault-free run of the same shape.
func (s *scenario) assertMatchesBaseline(t *testing.T, base *scenario) {
	t.Helper()
	for rank := range s.sums {
		for e := range s.sums[rank] {
			if math.Float64bits(s.sums[rank][e]) != math.Float64bits(base.sums[rank][e]) {
				t.Errorf("rank %d epoch %d: allreduce %v != fault-free %v",
					rank, e, s.sums[rank][e], base.sums[rank][e])
			}
			if !bytes.Equal(s.bcasts[rank][e], base.bcasts[rank][e]) {
				t.Errorf("rank %d epoch %d: bcast payload diverged", rank, e)
			}
		}
		if !bytes.Equal(s.finals[rank], base.finals[rank]) {
			t.Errorf("rank %d: final buffer diverged from fault-free run", rank)
		}
	}
}

// baseline runs the scenario fault-free (with logging, so log paths are
// exercised identically) and returns it for comparison and calibration.
func baseline(t *testing.T, ranks, epochs int) *scenario {
	t.Helper()
	s := newScenario(ranks, epochs, Options{LogMessages: true})
	if err := s.w.Run(s.body); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestPartialRestoreSingleKill kills one non-root rank mid-epoch and
// checks the full partial-restart contract: the job finishes bit-identical
// to the fault-free run, survivors never roll back (their bodies run
// once), messages were replayed and duplicate sends suppressed, and the
// recovery is reported in the stats.
func TestPartialRestoreSingleKill(t *testing.T) {
	const ranks, epochs = 4, 3
	base := baseline(t, ranks, epochs)
	victim := 2
	killOp := base.opsCommit1[victim] + 3 // mid-epoch 1, after gen 1 committed

	inj := NewRankFaultInjector(RankFaultPlan{Seed: 42, Kills: []RankKill{{Rank: victim, AtOp: killOp}}})
	s := newScenario(ranks, epochs, Options{LogMessages: true, Fault: inj})
	if err := s.w.RunWithRecovery(s.body, s.recoverRank); err != nil {
		t.Fatal(err)
	}
	s.assertMatchesBaseline(t, base)

	if len(inj.Events()) != 1 {
		t.Fatalf("fault events = %v", inj.Events())
	}
	for rank, runs := range s.bodyRuns {
		want := 1
		if rank == victim {
			want = 2
		}
		if runs != want {
			t.Errorf("rank %d body ran %d times, want %d (survivors must not roll back)", rank, runs, want)
		}
	}
	if len(s.partials) != 1 {
		t.Fatalf("partial restores = %d, want 1", len(s.partials))
	}
	pr := s.partials[0]
	if pr.Rank != victim || pr.Generation != 1 || pr.Manifest != "pjob@1" {
		t.Errorf("partial restore = %+v", pr)
	}
	if pr.ReplayedMessages == 0 || pr.ReplayedBytes == 0 {
		t.Errorf("no messages replayed: %+v", pr)
	}
	if pr.SegmentBytes <= 0 {
		t.Errorf("segment bytes = %d", pr.SegmentBytes)
	}
	if pr.RecoveryVtime <= 0 {
		t.Errorf("recovery vtime = %v", pr.RecoveryVtime)
	}
	rec := s.w.RecoveryStats()
	if rec.Kills != 1 || rec.PartialRestores != 1 {
		t.Errorf("recovery stats = %+v", rec)
	}
	if rec.SuppressedSends == 0 {
		t.Errorf("no duplicate sends suppressed: %+v", rec)
	}
	if rec.SurvivorStallVtime <= 0 || rec.SurvivorStalls == 0 {
		t.Errorf("no survivor stall accounted: %+v", rec)
	}
}

// TestPartialRestoreRootKill kills rank 0 — the collective root and
// checkpoint coordinator — mid-epoch. Its gather/bcast and store
// aggregation re-execute from replayed logs.
func TestPartialRestoreRootKill(t *testing.T) {
	const ranks, epochs = 4, 3
	base := baseline(t, ranks, epochs)
	killOp := base.opsCommit1[0] + 5

	inj := NewRankFaultInjector(RankFaultPlan{Seed: 7, Kills: []RankKill{{Rank: 0, AtOp: killOp}}})
	s := newScenario(ranks, epochs, Options{LogMessages: true, Fault: inj})
	if err := s.w.RunWithRecovery(s.body, s.recoverRank); err != nil {
		t.Fatal(err)
	}
	s.assertMatchesBaseline(t, base)
	if len(s.partials) != 1 || s.partials[0].Rank != 0 {
		t.Fatalf("partial restores = %+v", s.partials)
	}
}

// TestRankKillPositionSweep is the seeded soak: it sweeps the kill over
// every MPI-operation position of the victim after the first committed
// generation — including positions inside later coordinated checkpoint
// protocols — and requires bit-identical completion with exactly one
// partial restore each time (the TestPutFaultPositionSweep idea lifted to
// rank granularity).
func TestRankKillPositionSweep(t *testing.T) {
	const ranks, epochs = 4, 3
	const victim = 2
	base := baseline(t, ranks, epochs)
	first, last := base.opsCommit1[victim]+1, base.opsTotal[victim]
	if first >= last {
		t.Fatalf("calibration: ops after commit1 %d .. total %d", first, last)
	}
	for op := first; op <= last; op++ {
		inj := NewRankFaultInjector(RankFaultPlan{Seed: uint64(op), Kills: []RankKill{{Rank: victim, AtOp: op}}})
		s := newScenario(ranks, epochs, Options{LogMessages: true, Fault: inj})
		if err := s.w.RunWithRecovery(s.body, s.recoverRank); err != nil {
			t.Fatalf("kill at op %d: %v", op, err)
		}
		if ev := inj.Events(); len(ev) != 1 {
			t.Fatalf("kill at op %d did not land: %v", op, ev)
		}
		s.assertMatchesBaseline(t, base)
		for rank, runs := range s.bodyRuns {
			want := 1
			if rank == victim {
				want = 2
			}
			if runs != want {
				t.Fatalf("kill at op %d: rank %d body ran %d times, want %d", op, rank, runs, want)
			}
		}
		if rec := s.w.RecoveryStats(); rec.Kills != 1 || rec.PartialRestores != 1 {
			t.Fatalf("kill at op %d: recovery stats = %+v", op, rec)
		}
	}
}

// TestCollectivesDuringRecovery kills the victim right before its
// allreduce contribution: the survivors' Bcast completes while the victim
// is dead, the AllreduceSum completes once replay re-supplies the
// contribution, and everything is bit-identical to fault-free.
func TestCollectivesDuringRecovery(t *testing.T) {
	const ranks, epochs = 4, 2
	base := baseline(t, ranks, epochs)
	victim := 3
	// Non-root epoch op order: ring send, ring recv, bcast recv,
	// allreduce send, ... — kill at the allreduce contribution.
	killOp := base.opsCommit1[victim] + 4

	inj := NewRankFaultInjector(RankFaultPlan{Seed: 3, Kills: []RankKill{{Rank: victim, AtOp: killOp}}})
	s := newScenario(ranks, epochs, Options{LogMessages: true, Fault: inj})
	if err := s.w.RunWithRecovery(s.body, s.recoverRank); err != nil {
		t.Fatal(err)
	}
	s.assertMatchesBaseline(t, base)
	if rec := s.w.RecoveryStats(); rec.PartialRestores != 1 || rec.ReplayedMessages == 0 {
		t.Errorf("recovery stats = %+v", rec)
	}
}

// TestTwoRanksDieSameEpochFallsBack kills two ranks in the same epoch.
// Partial restore must refuse with the typed *PartialRestoreUnsupported
// (latching the world failed), and a full RestoreGlobalFromStore of the
// committed generation must still work.
func TestTwoRanksDieSameEpochFallsBack(t *testing.T) {
	const ranks, epochs = 4, 2
	base := baseline(t, ranks, epochs)
	// Both victims die at their epoch-1 ring-recv entry, after their ring
	// sends: two corpses in one epoch.
	inj := NewRankFaultInjector(RankFaultPlan{Seed: 11, Kills: []RankKill{
		{Rank: 1, AtOp: base.opsCommit1[1] + 2},
		{Rank: 2, AtOp: base.opsCommit1[2] + 2},
	}})
	s := newScenario(ranks, epochs, Options{LogMessages: true, Fault: inj})
	// Hold both recoveries until both kills have landed, so the restore
	// sees two ranks down no matter how the goroutines interleave.
	var bothDead sync.WaitGroup
	bothDead.Add(2)
	err := s.w.RunWithRecovery(s.body, func(r *Rank, k *RankKilled) error {
		bothDead.Done()
		bothDead.Wait()
		return s.recoverRank(r, k)
	})
	if err == nil {
		t.Fatal("two deaths in one epoch must not fully recover")
	}
	var unsup *PartialRestoreUnsupported
	if !errors.As(err, &unsup) {
		t.Fatalf("error = %v, want *PartialRestoreUnsupported", err)
	}
	if len(inj.Events()) != 2 {
		t.Fatalf("fault events = %v", inj.Events())
	}

	// Typed fallback: whole-job rollback to the committed generation.
	for _, r := range s.w.Ranks() {
		r.Process().Kill()
	}
	restored, deg, rerr := RestoreGlobalFromStore(s.cl, s.st, s.job, core.Options{})
	if rerr != nil {
		t.Fatal(rerr)
	}
	if deg != nil {
		t.Fatalf("degraded full restore: %v", deg)
	}
	if len(restored) != ranks {
		t.Fatalf("restored %d ranks, want %d", len(restored), ranks)
	}
	for rank, c := range restored {
		data, _, err := c.EnqueueReadBuffer(base.qs[rank], base.bufs[rank], true, 0, int64(s.bufN), nil)
		if err != nil {
			t.Fatalf("rank %d read: %v", rank, err)
		}
		if want := bufPattern(rank, 1, s.bufN); !bytes.Equal(data, want) {
			t.Errorf("rank %d: rollback state is not the committed generation", rank)
		}
		c.Detach()
	}
}

// TestPartialRestoreStaleGeneration asks RestoreRank for an older
// generation than the committed one: its logs are truncated, so the typed
// degraded path must fire.
func TestPartialRestoreStaleGeneration(t *testing.T) {
	const ranks, epochs = 2, 3
	base := baseline(t, ranks, epochs)
	victim := 1
	killOp := base.opsTotal[victim] - 2 // in epoch 2, committed gen is pjob@2

	inj := NewRankFaultInjector(RankFaultPlan{Seed: 5, Kills: []RankKill{{Rank: victim, AtOp: killOp}}})
	s := newScenario(ranks, epochs, Options{LogMessages: true, Fault: inj})
	err := s.w.RunWithRecovery(s.body, func(r *Rank, _ *RankKilled) error {
		_, _, rerr := s.w.RestoreRank(s.st, "pjob@1", r.Rank(), core.Options{})
		return rerr
	})
	var unsup *PartialRestoreUnsupported
	if !errors.As(err, &unsup) {
		t.Fatalf("error = %v, want *PartialRestoreUnsupported", err)
	}
}

// TestPartialRestoreBeforeFirstCommit kills a rank before any coordinated
// generation commits: there is nothing to restore from, typed fallback.
func TestPartialRestoreBeforeFirstCommit(t *testing.T) {
	inj := NewRankFaultInjector(RankFaultPlan{Seed: 9, Kills: []RankKill{{Rank: 1, AtOp: 1}}})
	s := newScenario(2, 1, Options{LogMessages: true, Fault: inj})
	err := s.w.RunWithRecovery(s.body, s.recoverRank)
	var unsup *PartialRestoreUnsupported
	if !errors.As(err, &unsup) {
		t.Fatalf("error = %v, want *PartialRestoreUnsupported", err)
	}
}

// TestRankDownWithoutLogging: with message logging off, a rank death is a
// whole-job failure and every operation surfaces the typed ErrRankDown
// instead of hanging in the barrier.
func TestRankDownWithoutLogging(t *testing.T) {
	w, err := NewWorld(cluster(2), 2)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(r *Rank) error {
		if r.Rank() == 1 {
			r.Process().Kill()
			return nil
		}
		// Parked receive must unwind with ErrRankDown, not deadlock.
		_, err := r.Recv(1, 1)
		return err
	})
	if !errors.Is(err, ErrRankDown) {
		t.Fatalf("error = %v, want ErrRankDown", err)
	}
	// Every subsequent operation fails the same way.
	r0 := w.Ranks()[0]
	if err := r0.Send(1, 1, []byte("x")); !errors.Is(err, ErrRankDown) {
		t.Errorf("send = %v, want ErrRankDown", err)
	}
	if err := r0.Barrier(); !errors.Is(err, ErrRankDown) {
		t.Errorf("barrier = %v, want ErrRankDown", err)
	}
}

// TestMessageLogBounded asserts the satellite guarantee: sender logs are
// truncated at every committed generation, so the high-water mark is one
// epoch's traffic no matter how many epochs run.
func TestMessageLogBounded(t *testing.T) {
	short := newScenario(4, 2, Options{LogMessages: true})
	if err := short.w.Run(short.body); err != nil {
		t.Fatal(err)
	}
	long := newScenario(4, 6, Options{LogMessages: true})
	if err := long.w.Run(long.body); err != nil {
		t.Fatal(err)
	}
	ls, ll := short.w.LogStats(), long.w.LogStats()
	if ll.Entries != 0 || ls.Entries != 0 {
		t.Errorf("entries after final commit: short %d, long %d — truncation broken", ls.Entries, ll.Entries)
	}
	if ll.TruncatedEntries <= ls.TruncatedEntries {
		t.Errorf("long run truncated %d <= short run %d", ll.TruncatedEntries, ls.TruncatedEntries)
	}
	// The bound: 3x the epochs, same high-water footprint. Entry counts are
	// exactly per-epoch traffic; bytes get a small tolerance because the
	// checkpoint-image payloads are not byte-constant across generations.
	if ll.HighWaterEntries != ls.HighWaterEntries {
		t.Errorf("log high-water grew across generations: short %d entries, long %d entries",
			ls.HighWaterEntries, ll.HighWaterEntries)
	}
	if float64(ll.HighWaterBytes) > 1.1*float64(ls.HighWaterBytes) {
		t.Errorf("log high-water bytes grew across generations: short %d, long %d",
			ls.HighWaterBytes, ll.HighWaterBytes)
	}
	if ls.HighWaterEntries == 0 || ls.HighWaterBytes == 0 {
		t.Errorf("nothing was ever logged: %+v", ls)
	}
}

// TestRankFaultInjectorSeededPick: Rank -1 resolves to a deterministic
// seeded victim.
func TestRankFaultInjectorSeededPick(t *testing.T) {
	a := NewRankFaultInjector(RankFaultPlan{Seed: 123, Kills: []RankKill{{Rank: -1, AtOp: 1}, {Rank: -1, AtOp: 1}}})
	a.bind(64)
	b := NewRankFaultInjector(RankFaultPlan{Seed: 123, Kills: []RankKill{{Rank: -1, AtOp: 1}, {Rank: -1, AtOp: 1}}})
	b.bind(64)
	av, bv := a.Victims(), b.Victims()
	if len(av) != 2 || av[0] != bv[0] || av[1] != bv[1] {
		t.Fatalf("same seed resolved different victims: %v vs %v", av, bv)
	}
	c := NewRankFaultInjector(RankFaultPlan{Seed: 124, Kills: []RankKill{{Rank: -1, AtOp: 1}, {Rank: -1, AtOp: 1}}})
	c.bind(64)
	cv := c.Victims()
	if av[0] == cv[0] && av[1] == cv[1] {
		t.Errorf("different seeds resolved identical victims: %v", cv)
	}
	for _, v := range append(av, cv...) {
		if v < 0 || v >= 64 {
			t.Errorf("victim %d out of range", v)
		}
	}
}
