package mpi

import (
	"fmt"

	"checl/internal/core"
	"checl/internal/proc"
	"checl/internal/store"
	"checl/internal/vtime"
)

// Store-backed global snapshots: the aggregation step lands in a
// content-addressed checkpoint store (typically on the shared NFS)
// instead of a flat NFS file, so successive global snapshots of the same
// job — where most ranks' state is unchanged — write only the delta.

// CoordinatedCheckpointToStore is CoordinatedCheckpoint with the global
// snapshot written into st under job. Local per-rank snapshots still go
// to each node's local disk (the Hursey-style two-level flow); only
// rank 0's aggregate goes through the store. Every rank returns its own
// stats; rank 0's additionally carries the store Put breakdown.
func (r *Rank) CoordinatedCheckpointToStore(checl *core.CheCL, st *store.Store, job string) (GlobalSnapshotStats, error) {
	var stats GlobalSnapshotStats
	r.Barrier()

	// An overlapped store write from an earlier solo checkpoint must not
	// still be in flight while the coordinated protocol runs: barrier on
	// it here, before this rank's local snapshot.
	if err := checl.WaitBackgroundWrite(); err != nil {
		return stats, fmt.Errorf("mpi: rank %d background write: %w", r.rank, err)
	}

	localPath := fmt.Sprintf("%s.local.%d", job, r.rank)
	cst, err := checl.Checkpoint(r.node.LocalDisk, localPath)
	if err != nil {
		return stats, fmt.Errorf("mpi: rank %d local snapshot: %w", r.rank, err)
	}
	r.Barrier() // all local snapshots complete

	if r.rank != 0 {
		data, err := r.node.LocalDisk.ReadFile(r.node.Clock, localPath)
		if err != nil {
			return stats, err
		}
		if err := r.Send(0, tagCkpt, data); err != nil {
			return stats, err
		}
		r.Barrier() // global snapshot complete
		stats.LocalTimes = []vtime.Duration{cst.Phases.Total()}
		stats.LocalSizes = []int64{cst.FileSize}
		return stats, nil
	}

	// Rank 0: aggregate into the store instead of a flat NFS file.
	sw := vtime.NewStopwatch(r.node.Clock)
	locals := make([][]byte, r.size)
	var err0 error
	locals[0], err0 = r.node.LocalDisk.ReadFile(r.node.Clock, localPath)
	if err0 != nil {
		return stats, err0
	}
	for i := 1; i < r.size; i++ {
		data, err := r.Recv(i, tagCkpt)
		if err != nil {
			return stats, err
		}
		locals[i] = data
	}
	global, err := encodeGlobalSnapshot(locals)
	if err != nil {
		return stats, err
	}
	man, put, err := st.Put(r.node.Clock, job, global)
	if err != nil {
		return stats, fmt.Errorf("mpi: global snapshot to store: %w", err)
	}
	stats.AggregateTime = sw.Elapsed()
	stats.GlobalSize = int64(len(global))
	stats.LocalTimes = []vtime.Duration{cst.Phases.Total()}
	stats.LocalSizes = []int64{cst.FileSize}
	stats.Total = cst.Phases.Total() + stats.AggregateTime
	stats.Manifest = man.ID()
	stats.StorePut = &put
	r.Barrier()
	return stats, nil
}

// RestoreGlobalFromStore restarts an MPI+CheCL job from a global snapshot
// in a checkpoint store. ref is a manifest ID ("job@seq") or a bare job
// name (its latest snapshot). Placement matches RestoreGlobal: rank i's
// local snapshot restores on node i%len(nodes).
//
// The restore is globally consistent or not at all: a candidate
// generation counts as restorable only if it decodes as a global snapshot
// AND every rank restores from it — a generation that fails partway is
// torn down completely before the next older one is tried. The returned
// *store.DegradedRestore is nil when the newest generation restored;
// otherwise it lists every newer generation that was skipped and why, and
// when no generation works it is also the returned error.
func RestoreGlobalFromStore(cluster *proc.Cluster, st *store.Store, ref string, opts core.Options) ([]*core.CheCL, *store.DegradedRestore, error) {
	if len(cluster.Nodes) == 0 {
		return nil, nil, fmt.Errorf("mpi: cluster has no nodes")
	}
	coord := cluster.Nodes[0]
	var restored []*core.CheCL
	validate := func(data []byte, man store.Manifest) error {
		locals, err := decodeGlobalSnapshot(data)
		if err != nil {
			return err
		}
		cs := make([]*core.CheCL, len(locals))
		teardown := func() {
			for _, c := range cs {
				if c != nil {
					c.Detach()
					c.App().Kill()
				}
			}
		}
		for rank, local := range locals {
			node := cluster.Nodes[rank%len(cluster.Nodes)]
			localPath := fmt.Sprintf("%s.restore.%d", man.ID(), rank)
			if err := node.LocalDisk.WriteFile(node.Clock, localPath, local); err != nil {
				teardown()
				return err
			}
			c, _, err := core.Restore(node, node.LocalDisk, localPath, opts)
			if err != nil {
				teardown()
				return fmt.Errorf("rank %d: %w", rank, err)
			}
			cs[rank] = c
		}
		restored = cs
		return nil
	}
	_, _, deg, err := st.GetNewestRestorable(coord.Clock, ref, validate)
	if err != nil {
		return nil, deg, err
	}
	return restored, deg, nil
}
