package mpi

import (
	"fmt"
	"strings"

	"checl/internal/core"
	"checl/internal/proc"
	"checl/internal/store"
	"checl/internal/vtime"
)

// Store-backed global snapshots: the aggregation step lands in a
// content-addressed checkpoint store (typically on the shared NFS)
// instead of a flat NFS file, so successive global snapshots of the same
// job — where most ranks' state is unchanged — write only the delta.
//
// The payload is the concatenation of the per-rank local snapshots, with
// one named store segment per rank ("rank/00042"). Segments are what make
// partial restart O(one rank): RestoreRank fetches a single rank's bytes
// via store.GetSegment without assembling the other ranks' chunks.

// rankSegPrefix namespaces the per-rank segments of a global snapshot.
const rankSegPrefix = "rank/"

func rankSegment(rank int) string { return fmt.Sprintf("%s%05d", rankSegPrefix, rank) }

// flattenLocals concatenates rank-ordered local snapshots into one
// payload with a per-rank segment map.
func flattenLocals(locals [][]byte) ([]byte, []store.Segment) {
	var total int
	for _, l := range locals {
		total += len(l)
	}
	payload := make([]byte, 0, total)
	segs := make([]store.Segment, 0, len(locals))
	for i, l := range locals {
		segs = append(segs, store.Segment{
			Name: rankSegment(i),
			Off:  int64(len(payload)),
			Len:  int64(len(l)),
		})
		payload = append(payload, l...)
	}
	return payload, segs
}

// splitSnapshot recovers the rank-ordered local snapshots from a store
// payload: segment-mapped payloads split by the manifest's per-rank
// segments, legacy payloads decode as the gob global-snapshot format.
func splitSnapshot(data []byte, man store.Manifest) ([][]byte, error) {
	if len(man.Segments) == 0 {
		return decodeGlobalSnapshot(data)
	}
	locals := make([][]byte, 0, len(man.Segments))
	var off int64
	for _, seg := range man.Segments {
		if !strings.HasPrefix(seg.Name, rankSegPrefix) {
			return nil, fmt.Errorf("mpi: %s: segment %q is not a rank segment", man.ID(), seg.Name)
		}
		if off+seg.Size > int64(len(data)) {
			return nil, fmt.Errorf("mpi: %s: segment %q overruns the payload", man.ID(), seg.Name)
		}
		locals = append(locals, data[off:off+seg.Size])
		off += seg.Size
	}
	if off != int64(len(data)) {
		return nil, fmt.Errorf("mpi: %s: segments cover %d of %d payload bytes", man.ID(), off, len(data))
	}
	return locals, nil
}

// CoordinatedCheckpointToStore is CoordinatedCheckpoint with the global
// snapshot written into st under job. Local per-rank snapshots still go
// to each node's local disk (the Hursey-style two-level flow); only
// rank 0's aggregate goes through the store, segmented per rank. Every
// rank returns its own stats; rank 0's additionally carries the store
// Put breakdown.
//
// The final barrier doubles as the generation commit point: its
// completion atomically records the manifest, snapshots the channel
// sequence counters, and truncates the sender message logs — the cut a
// partial restore resumes from.
func (r *Rank) CoordinatedCheckpointToStore(checl *core.CheCL, st store.Backend, job string) (GlobalSnapshotStats, error) {
	var stats GlobalSnapshotStats
	if err := r.Barrier(); err != nil {
		return stats, err
	}

	// An overlapped store write from an earlier solo checkpoint must not
	// still be in flight while the coordinated protocol runs: barrier on
	// it here, before this rank's local snapshot.
	if err := checl.WaitBackgroundWrite(); err != nil {
		return stats, fmt.Errorf("mpi: rank %d background write: %w", r.rank, err)
	}

	// Speculative drain per rank (see CoordinatedCheckpoint): validation
	// happens inside checl.Checkpoint, before the commit barrier.
	if checl.Options().SpeculativeDrain {
		if err := checl.BeginCheckpointEpoch(); err != nil {
			return stats, fmt.Errorf("mpi: rank %d epoch begin: %w", r.rank, err)
		}
	}

	localPath := fmt.Sprintf("%s.local.%d", job, r.rank)
	cst, err := checl.Checkpoint(r.node.LocalDisk, localPath)
	if err != nil {
		return stats, fmt.Errorf("mpi: rank %d local snapshot: %w", r.rank, err)
	}
	if err := r.Barrier(); err != nil { // all local snapshots complete
		return stats, err
	}

	if r.rank != 0 {
		data, err := r.node.LocalDisk.ReadFile(r.node.Clock, localPath)
		if err != nil {
			return stats, err
		}
		if err := r.Send(0, tagCkpt, data); err != nil {
			return stats, err
		}
		if err := r.commitBarrier(""); err != nil { // global snapshot committed
			return stats, err
		}
		stats.LocalTimes = []vtime.Duration{cst.Phases.Total()}
		stats.LocalSizes = []int64{cst.FileSize}
		stats.LocalStalls = []vtime.Duration{cst.StallTime}
		return stats, nil
	}

	// Rank 0: aggregate into the store instead of a flat NFS file.
	sw := vtime.NewStopwatch(r.node.Clock)
	locals := make([][]byte, r.size)
	var err0 error
	locals[0], err0 = r.node.LocalDisk.ReadFile(r.node.Clock, localPath)
	if err0 != nil {
		return stats, err0
	}
	for i := 1; i < r.size; i++ {
		data, err := r.Recv(i, tagCkpt)
		if err != nil {
			return stats, err
		}
		locals[i] = data
	}
	payload, segs := flattenLocals(locals)
	man, put, err := st.PutSegmented(r.node.Clock, job, payload, segs)
	if err != nil {
		return stats, fmt.Errorf("mpi: global snapshot to store: %w", err)
	}
	stats.AggregateTime = sw.Elapsed()
	stats.GlobalSize = int64(len(payload))
	stats.LocalTimes = []vtime.Duration{cst.Phases.Total()}
	stats.LocalSizes = []int64{cst.FileSize}
	stats.LocalStalls = []vtime.Duration{cst.StallTime}
	stats.Total = cst.Phases.Total() + stats.AggregateTime
	stats.Manifest = man.ID()
	stats.StorePut = &put
	if err := r.commitBarrier(man.ID()); err != nil {
		return stats, err
	}
	return stats, nil
}

// RestoreGlobalFromStore restarts an MPI+CheCL job from a global snapshot
// in a checkpoint store. ref is a manifest ID ("job@seq") or a bare job
// name (its latest snapshot). Placement matches RestoreGlobal: rank i's
// local snapshot restores on node i%len(nodes).
//
// The restore is globally consistent or not at all: a candidate
// generation counts as restorable only if it splits into per-rank
// snapshots AND every rank restores from it — a generation that fails
// partway is torn down completely before the next older one is tried.
// The returned *store.DegradedRestore is nil when the newest generation
// restored; otherwise it lists every newer generation that was skipped
// and why, and when no generation works it is also the returned error.
func RestoreGlobalFromStore(cluster *proc.Cluster, st store.Backend, ref string, opts core.Options) ([]*core.CheCL, *store.DegradedRestore, error) {
	if len(cluster.Nodes) == 0 {
		return nil, nil, fmt.Errorf("mpi: cluster has no nodes")
	}
	coord := cluster.Nodes[0]
	var restored []*core.CheCL
	validate := func(data []byte, man store.Manifest) error {
		locals, err := splitSnapshot(data, man)
		if err != nil {
			return err
		}
		cs := make([]*core.CheCL, len(locals))
		teardown := func() {
			for _, c := range cs {
				if c != nil {
					c.Detach()
					c.App().Kill()
				}
			}
		}
		for rank, local := range locals {
			node := cluster.Nodes[rank%len(cluster.Nodes)]
			localPath := fmt.Sprintf("%s.restore.%d", man.ID(), rank)
			if err := node.LocalDisk.WriteFile(node.Clock, localPath, local); err != nil {
				teardown()
				return err
			}
			c, _, err := core.Restore(node, node.LocalDisk, localPath, opts)
			if err != nil {
				teardown()
				return fmt.Errorf("rank %d: %w", rank, err)
			}
			cs[rank] = c
		}
		restored = cs
		return nil
	}
	_, _, deg, err := st.GetNewestRestorable(coord.Clock, ref, validate)
	if err != nil {
		return nil, deg, err
	}
	return restored, deg, nil
}
