package mpi

import (
	"sync"

	"checl/internal/vtime"
)

// Seeded, deterministic rank-level failure injection, analogous to
// ipc.FaultInjector (proxy kills) and proc.FaultInjector (disk faults):
// a RankFaultPlan kills rank r at its k-th MPI operation or at the first
// operation at/after a virtual instant. Kills land only at MPI operation
// boundaries — Send/Recv/Barrier/collective entries — so every failure
// point is a well-defined cut of the message-passing state, and the same
// plan over the same app reproduces the same failure bit for bit.

// RankKill is one planned kill.
type RankKill struct {
	Rank int        // victim rank; -1 picks one from the plan seed
	AtOp int        // fire at the victim's AtOp-th MPI operation (1-based)
	At   vtime.Time // when AtOp == 0: fire at the first operation at/after At
}

// RankFaultPlan is a seeded deterministic kill schedule.
type RankFaultPlan struct {
	Seed  uint64
	Kills []RankKill
}

// RankFaultEvent records one landed kill.
type RankFaultEvent struct {
	Rank int
	Op   int
	At   vtime.Time
}

// RankFaultInjector evaluates a RankFaultPlan against a world. Pass it
// via Options.Fault; one injector serves one world.
type RankFaultInjector struct {
	mu     sync.Mutex
	plan   RankFaultPlan
	rng    uint64
	bound  bool
	kills  []rankKillState
	events []RankFaultEvent
}

type rankKillState struct {
	RankKill
	fired bool
}

// NewRankFaultInjector builds an injector for the plan.
func NewRankFaultInjector(plan RankFaultPlan) *RankFaultInjector {
	return &RankFaultInjector{plan: plan, rng: plan.Seed}
}

// bind resolves seeded victim picks once the world size is known
// (called by NewWorldWithOptions).
func (f *RankFaultInjector) bind(size int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.bound {
		return
	}
	f.bound = true
	for _, k := range f.plan.Kills {
		if k.Rank < 0 {
			k.Rank = int(f.next() % uint64(size))
		}
		f.kills = append(f.kills, rankKillState{RankKill: k})
	}
}

// next is the splitmix64 step shared with the other injectors.
func (f *RankFaultInjector) next() uint64 {
	f.rng += 0x9e3779b97f4a7c15
	z := f.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// shouldKill reports whether an unfired kill matches this operation, and
// marks it fired.
func (f *RankFaultInjector) shouldKill(rank, op int, now vtime.Time) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := range f.kills {
		k := &f.kills[i]
		if k.fired || k.Rank != rank {
			continue
		}
		if k.AtOp > 0 {
			if op != k.AtOp {
				continue
			}
		} else if now < k.At {
			continue
		}
		k.fired = true
		f.events = append(f.events, RankFaultEvent{Rank: rank, Op: op, At: now})
		return true
	}
	return false
}

// Events reports the kills that actually landed.
func (f *RankFaultInjector) Events() []RankFaultEvent {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]RankFaultEvent(nil), f.events...)
}

// Victims reports the resolved victim ranks of the plan (after seeded
// picks), in plan order.
func (f *RankFaultInjector) Victims() []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]int, len(f.kills))
	for i, k := range f.kills {
		out[i] = k.Rank
	}
	return out
}
