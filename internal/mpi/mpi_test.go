package mpi

import (
	"fmt"
	"math"
	"testing"

	"checl/internal/core"
	"checl/internal/hw"
	"checl/internal/ocl"
	"checl/internal/proc"
	"checl/internal/vtime"
)

func cluster(n int) *proc.Cluster {
	return proc.NewCluster("pc", n, hw.TableISpec(), func(int) []*ocl.Vendor {
		return []*ocl.Vendor{ocl.AMD()}
	})
}

func TestSendRecv(t *testing.T) {
	w, err := NewWorld(cluster(2), 2)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(r *Rank) error {
		if r.Rank() == 0 {
			return r.Send(1, 7, []byte("hello"))
		}
		data, err := r.Recv(0, 7)
		if err != nil {
			return err
		}
		if string(data) != "hello" {
			return fmt.Errorf("got %q", data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvTagFiltering(t *testing.T) {
	w, _ := NewWorld(cluster(1), 2)
	err := w.Run(func(r *Rank) error {
		if r.Rank() == 0 {
			if err := r.Send(1, 1, []byte("first")); err != nil {
				return err
			}
			return r.Send(1, 2, []byte("second"))
		}
		// Receive out of order: tag 2 first.
		d2, err := r.Recv(0, 2)
		if err != nil {
			return err
		}
		d1, err := r.Recv(0, 1)
		if err != nil {
			return err
		}
		if string(d2) != "second" || string(d1) != "first" {
			return fmt.Errorf("tags mixed up: %q %q", d2, d1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInterNodeTransferSlowerThanIntraNode(t *testing.T) {
	// Rank 0 and 1 on different nodes; 0 and... use two worlds.
	measure := func(nodes int) vtime.Duration {
		w, _ := NewWorld(cluster(nodes), 2)
		var elapsed vtime.Duration
		err := w.Run(func(r *Rank) error {
			payload := make([]byte, 8<<20)
			if r.Rank() == 0 {
				return r.Send(1, 1, payload)
			}
			start := r.Node().Clock.Now()
			if _, err := r.Recv(0, 1); err != nil {
				return err
			}
			elapsed = r.Node().Clock.Now().Sub(start)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	intra := measure(1) // both ranks on one node
	inter := measure(2)
	if !(inter > intra) {
		t.Errorf("inter-node transfer (%v) should exceed intra-node (%v)", inter, intra)
	}
}

func TestBarrierAlignsClocks(t *testing.T) {
	w, _ := NewWorld(cluster(3), 3)
	err := w.Run(func(r *Rank) error {
		// Skew the clocks: rank i burns i seconds.
		r.Node().Clock.Advance(vtime.Duration(r.Rank()) * vtime.Second)
		if err := r.Barrier(); err != nil {
			return err
		}
		if now := r.Node().Clock.Now(); now < vtime.Time(2*vtime.Second) {
			return fmt.Errorf("rank %d clock %v after barrier, want >= 2s", r.Rank(), now)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastAndAllreduce(t *testing.T) {
	w, _ := NewWorld(cluster(2), 4)
	err := w.Run(func(r *Rank) error {
		data, err := r.Bcast(0, []byte{42})
		if err != nil {
			return err
		}
		if data[0] != 42 {
			return fmt.Errorf("bcast got %v", data)
		}
		sum, err := r.AllreduceSum(float64(r.Rank() + 1))
		if err != nil {
			return err
		}
		if math.Abs(sum-10) > 1e-12 { // 1+2+3+4
			return fmt.Errorf("allreduce = %v, want 10", sum)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWorldValidation(t *testing.T) {
	if _, err := NewWorld(cluster(1), 0); err == nil {
		t.Error("zero-size world should fail")
	}
	if _, err := NewWorld(&proc.Cluster{}, 2); err == nil {
		t.Error("empty cluster should fail")
	}
}

// TestCoordinatedCheckpoint runs a tiny CheCL+MPI job on 2 nodes and takes
// a global snapshot, verifying the aggregation path and that the global
// snapshot lands on NFS with the combined size.
func TestCoordinatedCheckpoint(t *testing.T) {
	cl := cluster(2)
	w, _ := NewWorld(cl, 2)
	const vadd = `
__kernel void scale(__global float* x, float s) {
    x[get_global_id(0)] = x[get_global_id(0)] * s;
}`
	var rank0Stats GlobalSnapshotStats
	err := w.Run(func(r *Rank) error {
		c, err := core.Attach(r.Process(), core.Options{})
		if err != nil {
			return err
		}
		defer c.Detach()
		plats, _ := c.GetPlatformIDs()
		devs, _ := c.GetDeviceIDs(plats[0], ocl.DeviceTypeAll)
		ctx, _ := c.CreateContext(devs[:1])
		q, _ := c.CreateCommandQueue(ctx, devs[0], 0)
		prog, _ := c.CreateProgramWithSource(ctx, vadd)
		if err := c.BuildProgram(prog, ""); err != nil {
			return err
		}
		m, err := c.CreateBuffer(ctx, ocl.MemReadWrite, 1<<20, nil)
		if err != nil {
			return err
		}
		_ = m
		_ = q
		st, err := r.CoordinatedCheckpoint(c, "md.global")
		if err != nil {
			return err
		}
		if r.Rank() == 0 {
			rank0Stats = st
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !cl.NFS.Exists("md.global") {
		t.Fatal("global snapshot not on NFS")
	}
	sz, _ := cl.NFS.Size("md.global")
	if rank0Stats.GlobalSize != sz || sz < 2<<20 {
		t.Errorf("global size = %d (stats %d), want >= 2 MiB", sz, rank0Stats.GlobalSize)
	}
	if rank0Stats.AggregateTime <= 0 || rank0Stats.Total <= rank0Stats.AggregateTime {
		t.Errorf("stats = %+v", rank0Stats)
	}
}
