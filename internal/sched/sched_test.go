package sched

import (
	"strings"
	"testing"

	"checl/internal/core"
	"checl/internal/hw"
	"checl/internal/vtime"
)

func planner() *Planner {
	// A model in the ballpark the Fig. 8 fit produces on Table I hardware.
	return &Planner{Model: core.CostModel{Alpha: 3.5e-8, Beta: 0.1}}
}

func TestEstimateRuntimeOrdering(t *testing.T) {
	const work = 1e12
	cpu := EstimateRuntime(work, hw.CoreI7920())
	tesla := EstimateRuntime(work, hw.TeslaC1060())
	radeon := EstimateRuntime(work, hw.RadeonHD5870())
	if !(radeon < tesla && tesla < cpu) {
		t.Errorf("runtime ordering wrong: radeon %v, tesla %v, cpu %v", radeon, tesla, cpu)
	}
}

func TestEvaluateLongJobMigrates(t *testing.T) {
	p := planner()
	// A long job on the CPU with a GPU slot free: the ~20x speedup dwarfs
	// the migration cost.
	job := JobState{
		Name: "md-long", RemainingFlops: 1e13, MemBytes: 64 << 20,
		RecompileTime: 100 * vtime.Millisecond,
		Device:        hw.CoreI7920(), NodeName: "pc-0",
	}
	slot := Slot{NodeName: "pc-1", Device: hw.TeslaC1060()}
	m, ok := p.Evaluate(job, slot)
	if !ok {
		t.Fatal("long CPU job should migrate to a free GPU")
	}
	if m.Gain <= 0 || m.ToNode != "pc-1" {
		t.Errorf("move = %+v", m)
	}
	if !strings.Contains(m.String(), "md-long") {
		t.Errorf("String() = %q", m.String())
	}
}

func TestEvaluateShortJobStays(t *testing.T) {
	p := planner()
	// A nearly-finished job: the migration cost exceeds any speedup.
	job := JobState{
		Name: "short", RemainingFlops: 1e8, MemBytes: 512 << 20,
		RecompileTime: 2 * vtime.Second, // an S3D-like recompile bill
		Device:        hw.CoreI7920(), NodeName: "pc-0",
	}
	slot := Slot{NodeName: "pc-1", Device: hw.RadeonHD5870()}
	if _, ok := p.Evaluate(job, slot); ok {
		t.Error("short job should not pay a multi-second migration")
	}
}

func TestEvaluateDowngradeNeverPays(t *testing.T) {
	p := planner()
	job := JobState{
		Name: "gpu-job", RemainingFlops: 1e12, MemBytes: 16 << 20,
		Device: hw.TeslaC1060(), NodeName: "pc-0",
	}
	slot := Slot{NodeName: "pc-1", Device: hw.CoreI7920()}
	if _, ok := p.Evaluate(job, slot); ok {
		t.Error("moving a GPU job to a CPU must never be a gain")
	}
}

func TestMinGainSuppressesChurn(t *testing.T) {
	p := planner()
	job := JobState{
		Name: "marginal", RemainingFlops: 2e12, MemBytes: 8 << 20,
		Device: hw.TeslaC1060(), NodeName: "pc-0",
	}
	// HD5870 is ~3x the Tesla: a marginal but positive gain.
	slot := Slot{NodeName: "pc-1", Device: hw.RadeonHD5870()}
	if _, ok := p.Evaluate(job, slot); !ok {
		t.Fatal("expected a positive-gain move without MinGain")
	}
	p.MinGain = 10 * vtime.Second
	if _, ok := p.Evaluate(job, slot); ok {
		t.Error("MinGain should suppress the marginal move")
	}
}

func TestPlanAssignsBestGainsFirst(t *testing.T) {
	p := planner()
	jobs := []JobState{
		{Name: "huge", RemainingFlops: 1e14, MemBytes: 32 << 20, Device: hw.CoreI7920(), NodeName: "cpu-0"},
		{Name: "medium", RemainingFlops: 1e12, MemBytes: 32 << 20, Device: hw.CoreI7920(), NodeName: "cpu-1"},
		{Name: "tiny", RemainingFlops: 1e7, MemBytes: 32 << 20, Device: hw.CoreI7920(), NodeName: "cpu-2"},
	}
	slots := []Slot{
		{NodeName: "gpu-0", Device: hw.RadeonHD5870()},
	}
	plan := p.Plan(jobs, slots)
	if len(plan) != 1 {
		t.Fatalf("plan = %v, want exactly one move (one slot)", plan)
	}
	if plan[0].Job != "huge" {
		t.Errorf("the single GPU slot should go to the biggest job, got %s", plan[0].Job)
	}
}

func TestPlanOneMovePerJobAndSlot(t *testing.T) {
	p := planner()
	jobs := []JobState{
		{Name: "a", RemainingFlops: 1e13, MemBytes: 8 << 20, Device: hw.CoreI7920(), NodeName: "n0"},
		{Name: "b", RemainingFlops: 1e13, MemBytes: 8 << 20, Device: hw.CoreI7920(), NodeName: "n1"},
	}
	slots := []Slot{
		{NodeName: "g0", Device: hw.TeslaC1060()},
		{NodeName: "g1", Device: hw.RadeonHD5870()},
	}
	plan := p.Plan(jobs, slots)
	if len(plan) != 2 {
		t.Fatalf("plan = %v, want 2 moves", plan)
	}
	seenJob := map[string]bool{}
	seenSlot := map[string]bool{}
	for _, m := range plan {
		if seenJob[m.Job] || seenSlot[m.ToNode] {
			t.Errorf("duplicate assignment in %v", plan)
		}
		seenJob[m.Job] = true
		seenSlot[m.ToNode] = true
	}
	// The faster device goes to a job; both jobs are identical, so the
	// higher-gain pairing is job->HD5870.
	for _, m := range plan {
		if m.ToNode == "g1" && m.Gain <= 0 {
			t.Errorf("bad gain for %v", m)
		}
	}
}

func TestPlanEmptyInputs(t *testing.T) {
	p := planner()
	if got := p.Plan(nil, nil); len(got) != 0 {
		t.Errorf("empty plan = %v", got)
	}
	if got := p.Plan([]JobState{{Name: "x", RemainingFlops: 1e12, Device: hw.CoreI7920()}}, nil); len(got) != 0 {
		t.Errorf("no slots plan = %v", got)
	}
}

func TestEstimateRuntimeZeroDevice(t *testing.T) {
	got := EstimateRuntime(1e9, hw.DeviceModel{})
	if !got.IsInf() {
		t.Errorf("zero-rate device estimate = %v, want vtime.Infinity", got)
	}
	if got != vtime.Infinity {
		t.Errorf("estimate = %v, want the typed Infinity sentinel", got)
	}
}

func TestEvaluateRejectsDegenerateSlot(t *testing.T) {
	p := planner()
	job := JobState{
		Name: "j", RemainingFlops: 1e13, MemBytes: 8 << 20,
		Device: hw.CoreI7920(), NodeName: "pc-0",
	}
	if _, ok := p.Evaluate(job, Slot{NodeName: "pc-1", Device: hw.DeviceModel{Name: "dead"}}); ok {
		t.Error("a zero-GFLOPS slot must never be schedulable")
	}
}

func TestEvaluateRescuesJobOffDegenerateDevice(t *testing.T) {
	p := planner()
	// A job stranded on a degenerate device gains Infinity from any
	// working slot, regardless of MinGain.
	p.MinGain = vtime.Minute
	job := JobState{
		Name: "stranded", RemainingFlops: 1e12, MemBytes: 8 << 20,
		Device: hw.DeviceModel{Name: "dead"}, NodeName: "pc-0",
	}
	m, ok := p.Evaluate(job, Slot{NodeName: "pc-1", Device: hw.TeslaC1060()})
	if !ok {
		t.Fatal("stranded job should move to any working device")
	}
	if !m.Gain.IsInf() {
		t.Errorf("gain = %v, want Infinity", m.Gain)
	}
}

func TestEvaluateRejectsInsufficientGlobalMemory(t *testing.T) {
	p := planner()
	job := JobState{
		Name: "huge-ws", RemainingFlops: 1e13, MemBytes: 2 << 30, // 2 GiB
		Device: hw.CoreI7920(), NodeName: "pc-0",
	}
	// The HD5870 has 1 GiB of global memory: the job does not fit.
	if _, ok := p.Evaluate(job, Slot{NodeName: "pc-1", Device: hw.RadeonHD5870()}); ok {
		t.Error("job larger than the device's global memory must not move there")
	}
}

func TestMigrationCostUsesLiveDirtySet(t *testing.T) {
	p := planner()
	full := JobState{Name: "full", MemBytes: 512 << 20}
	inc := JobState{Name: "inc", MemBytes: 512 << 20, HasCheckpoint: true, DirtyBytes: 4 << 20}
	cf, ci := p.MigrationCost(full), p.MigrationCost(inc)
	if ci >= cf {
		t.Errorf("incremental cost %v should be far below full cost %v", ci, cf)
	}
	// A fully clean checkpointed job pays only image overhead + β.
	clean := JobState{Name: "clean", MemBytes: 512 << 20, HasCheckpoint: true}
	if c := p.MigrationCost(clean); c >= ci {
		t.Errorf("clean job cost %v should not exceed the dirty job's %v", c, ci)
	}
}

// TestMigrationCostSpeculativeStall: a job that checkpoints with a
// speculative drain replaces the α·M copy term with its measured stall
// residue — the scheduler sees a far cheaper Tm, so migrations that a
// stop-drain cost model would reject become profitable.
func TestMigrationCostSpeculativeStall(t *testing.T) {
	p := planner()
	stop := JobState{Name: "stop", MemBytes: 512 << 20}
	spec := JobState{Name: "spec", MemBytes: 512 << 20, CkptStall: vtime.Millisecond}
	cs, cp := p.MigrationCost(stop), p.MigrationCost(spec)
	if cp >= cs {
		t.Errorf("speculative cost %v should be far below stop-drain cost %v", cp, cs)
	}
	// The stall residue is still paid: a larger residue raises Tm.
	slow := spec
	slow.CkptStall = 100 * vtime.Millisecond
	if c := p.MigrationCost(slow); c <= cp {
		t.Errorf("larger stall residue must raise Tm: %v <= %v", c, cp)
	}
	// And the residue path dominates the incremental dirty-set path only
	// through the measured stall, never the working set: growing MemBytes
	// does not change a speculative job's Tm.
	big := spec
	big.MemBytes = 4 << 30
	if c := p.MigrationCost(big); c != cp {
		t.Errorf("speculative Tm depends on working set: %v != %v", c, cp)
	}
}

func TestEstimateRuntimeMatchesRoofline(t *testing.T) {
	// The planner's estimator and the hw roofline must share the
	// sustained-efficiency constant: a pure-compute kernel's time (minus
	// launch overhead) equals the scheduler's runtime estimate.
	dev := hw.TeslaC1060()
	const flops = 1e12
	est := EstimateRuntime(flops, dev)
	kt := dev.KernelTime(flops, 0) - dev.LaunchOverhead
	diff := est - kt
	if diff < 0 {
		diff = -diff
	}
	if diff > vtime.Microsecond {
		t.Errorf("EstimateRuntime %v and roofline %v disagree — efficiency constants drifted", est, kt)
	}
}

// TestPlanDeterministicAcrossInputOrders is the fleet-rebalancer
// contract: equal-gain candidates tie-break stably (job name, then slot
// identity), so the plan is a pure function of the job and slot sets
// regardless of the order map iteration delivered them in.
func TestPlanDeterministicAcrossInputOrders(t *testing.T) {
	p := planner()
	// Four identical jobs and three identical slots: every candidate has
	// exactly the same gain, so only the tie-break decides.
	jobByName := map[string]JobState{}
	for _, n := range []string{"job-a", "job-b", "job-c", "job-d"} {
		jobByName[n] = JobState{
			Name: n, RemainingFlops: 1e13, MemBytes: 16 << 20,
			Device: hw.CoreI7920(), NodeName: "cpu-0",
		}
	}
	slotByKey := map[string]Slot{}
	for _, n := range []string{"gpu-0/dev0", "gpu-1/dev0", "gpu-2/dev0"} {
		s := Slot{NodeName: n[:5], Device: hw.TeslaC1060(), Key: n}
		slotByKey[n] = s
	}

	var want []Move
	for iter := 0; iter < 50; iter++ {
		// Map iteration order varies run to run; rebuilding the slices
		// from the maps each iteration exercises different input orders.
		var jobs []JobState
		for _, j := range jobByName {
			jobs = append(jobs, j)
		}
		var slots []Slot
		for _, s := range slotByKey {
			slots = append(slots, s)
		}
		plan := p.Plan(jobs, slots)
		if len(plan) != 3 {
			t.Fatalf("plan %v: want 3 moves", plan)
		}
		if want == nil {
			want = plan
			// The tie-break itself: alphabetical jobs onto alphabetical slots.
			for i, wj := range []string{"job-a", "job-b", "job-c"} {
				if plan[i].Job != wj || plan[i].ToSlot != []string{"gpu-0/dev0", "gpu-1/dev0", "gpu-2/dev0"}[i] {
					t.Fatalf("tie-break order wrong: %v", plan)
				}
			}
			continue
		}
		for i := range plan {
			if plan[i] != want[i] {
				t.Fatalf("iteration %d: plan diverged: %v vs %v", iter, plan, want)
			}
		}
	}
}

func TestPlanDuplicateSlotKeysCollapse(t *testing.T) {
	p := planner()
	jobs := []JobState{
		{Name: "a", RemainingFlops: 1e13, MemBytes: 8 << 20, Device: hw.CoreI7920(), NodeName: "n0"},
		{Name: "b", RemainingFlops: 1e13, MemBytes: 8 << 20, Device: hw.CoreI7920(), NodeName: "n1"},
	}
	// The same physical slot listed twice must still be assigned once.
	s := Slot{NodeName: "g0", Device: hw.TeslaC1060(), Key: "g0/dev0"}
	plan := p.Plan(jobs, []Slot{s, s})
	if len(plan) != 1 {
		t.Fatalf("duplicate slot produced %d moves: %v", len(plan), plan)
	}
}
