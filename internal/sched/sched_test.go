package sched

import (
	"strings"
	"testing"

	"checl/internal/core"
	"checl/internal/hw"
	"checl/internal/vtime"
)

func planner() *Planner {
	// A model in the ballpark the Fig. 8 fit produces on Table I hardware.
	return &Planner{Model: core.CostModel{Alpha: 3.5e-8, Beta: 0.1}}
}

func TestEstimateRuntimeOrdering(t *testing.T) {
	const work = 1e12
	cpu := EstimateRuntime(work, hw.CoreI7920())
	tesla := EstimateRuntime(work, hw.TeslaC1060())
	radeon := EstimateRuntime(work, hw.RadeonHD5870())
	if !(radeon < tesla && tesla < cpu) {
		t.Errorf("runtime ordering wrong: radeon %v, tesla %v, cpu %v", radeon, tesla, cpu)
	}
}

func TestEvaluateLongJobMigrates(t *testing.T) {
	p := planner()
	// A long job on the CPU with a GPU slot free: the ~20x speedup dwarfs
	// the migration cost.
	job := JobState{
		Name: "md-long", RemainingFlops: 1e13, MemBytes: 64 << 20,
		RecompileTime: 100 * vtime.Millisecond,
		Device:        hw.CoreI7920(), NodeName: "pc-0",
	}
	slot := Slot{NodeName: "pc-1", Device: hw.TeslaC1060()}
	m, ok := p.Evaluate(job, slot)
	if !ok {
		t.Fatal("long CPU job should migrate to a free GPU")
	}
	if m.Gain <= 0 || m.ToNode != "pc-1" {
		t.Errorf("move = %+v", m)
	}
	if !strings.Contains(m.String(), "md-long") {
		t.Errorf("String() = %q", m.String())
	}
}

func TestEvaluateShortJobStays(t *testing.T) {
	p := planner()
	// A nearly-finished job: the migration cost exceeds any speedup.
	job := JobState{
		Name: "short", RemainingFlops: 1e8, MemBytes: 512 << 20,
		RecompileTime: 2 * vtime.Second, // an S3D-like recompile bill
		Device:        hw.CoreI7920(), NodeName: "pc-0",
	}
	slot := Slot{NodeName: "pc-1", Device: hw.RadeonHD5870()}
	if _, ok := p.Evaluate(job, slot); ok {
		t.Error("short job should not pay a multi-second migration")
	}
}

func TestEvaluateDowngradeNeverPays(t *testing.T) {
	p := planner()
	job := JobState{
		Name: "gpu-job", RemainingFlops: 1e12, MemBytes: 16 << 20,
		Device: hw.TeslaC1060(), NodeName: "pc-0",
	}
	slot := Slot{NodeName: "pc-1", Device: hw.CoreI7920()}
	if _, ok := p.Evaluate(job, slot); ok {
		t.Error("moving a GPU job to a CPU must never be a gain")
	}
}

func TestMinGainSuppressesChurn(t *testing.T) {
	p := planner()
	job := JobState{
		Name: "marginal", RemainingFlops: 2e12, MemBytes: 8 << 20,
		Device: hw.TeslaC1060(), NodeName: "pc-0",
	}
	// HD5870 is ~3x the Tesla: a marginal but positive gain.
	slot := Slot{NodeName: "pc-1", Device: hw.RadeonHD5870()}
	if _, ok := p.Evaluate(job, slot); !ok {
		t.Fatal("expected a positive-gain move without MinGain")
	}
	p.MinGain = 10 * vtime.Second
	if _, ok := p.Evaluate(job, slot); ok {
		t.Error("MinGain should suppress the marginal move")
	}
}

func TestPlanAssignsBestGainsFirst(t *testing.T) {
	p := planner()
	jobs := []JobState{
		{Name: "huge", RemainingFlops: 1e14, MemBytes: 32 << 20, Device: hw.CoreI7920(), NodeName: "cpu-0"},
		{Name: "medium", RemainingFlops: 1e12, MemBytes: 32 << 20, Device: hw.CoreI7920(), NodeName: "cpu-1"},
		{Name: "tiny", RemainingFlops: 1e7, MemBytes: 32 << 20, Device: hw.CoreI7920(), NodeName: "cpu-2"},
	}
	slots := []Slot{
		{NodeName: "gpu-0", Device: hw.RadeonHD5870()},
	}
	plan := p.Plan(jobs, slots)
	if len(plan) != 1 {
		t.Fatalf("plan = %v, want exactly one move (one slot)", plan)
	}
	if plan[0].Job != "huge" {
		t.Errorf("the single GPU slot should go to the biggest job, got %s", plan[0].Job)
	}
}

func TestPlanOneMovePerJobAndSlot(t *testing.T) {
	p := planner()
	jobs := []JobState{
		{Name: "a", RemainingFlops: 1e13, MemBytes: 8 << 20, Device: hw.CoreI7920(), NodeName: "n0"},
		{Name: "b", RemainingFlops: 1e13, MemBytes: 8 << 20, Device: hw.CoreI7920(), NodeName: "n1"},
	}
	slots := []Slot{
		{NodeName: "g0", Device: hw.TeslaC1060()},
		{NodeName: "g1", Device: hw.RadeonHD5870()},
	}
	plan := p.Plan(jobs, slots)
	if len(plan) != 2 {
		t.Fatalf("plan = %v, want 2 moves", plan)
	}
	seenJob := map[string]bool{}
	seenSlot := map[string]bool{}
	for _, m := range plan {
		if seenJob[m.Job] || seenSlot[m.ToNode] {
			t.Errorf("duplicate assignment in %v", plan)
		}
		seenJob[m.Job] = true
		seenSlot[m.ToNode] = true
	}
	// The faster device goes to a job; both jobs are identical, so the
	// higher-gain pairing is job->HD5870.
	for _, m := range plan {
		if m.ToNode == "g1" && m.Gain <= 0 {
			t.Errorf("bad gain for %v", m)
		}
	}
}

func TestPlanEmptyInputs(t *testing.T) {
	p := planner()
	if got := p.Plan(nil, nil); len(got) != 0 {
		t.Errorf("empty plan = %v", got)
	}
	if got := p.Plan([]JobState{{Name: "x", RemainingFlops: 1e12, Device: hw.CoreI7920()}}, nil); len(got) != 0 {
		t.Errorf("no slots plan = %v", got)
	}
}

func TestEstimateRuntimeZeroDevice(t *testing.T) {
	if EstimateRuntime(1e9, hw.DeviceModel{}) < vtime.Duration(1<<61) {
		t.Error("zero-rate device should report effectively infinite time")
	}
}
