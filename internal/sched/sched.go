// Package sched implements the dynamic job scheduler the paper presents
// CheCL as an infrastructure for (§IV-C and §VI): given running jobs on a
// heterogeneous GPU cluster, it decides whether migrating a job to a
// faster node — or to a different device kind on the same node — pays off,
// using the fitted migration-cost model Tm = α·M + Tr + β.
//
// "If the performance difference between two nodes or between two compute
// devices for a process is large enough to justify the migration cost,
// the process should be migrated to a higher-performance node or compute
// device." — §IV-C.
package sched

import (
	"fmt"
	"sort"

	"checl/internal/core"
	"checl/internal/hw"
	"checl/internal/vtime"
)

// JobState is the scheduler's view of one running job.
type JobState struct {
	Name string
	// RemainingFlops is the job's estimated remaining computation.
	RemainingFlops float64
	// MemBytes is the job's working set. It bounds device placement
	// (a job cannot move onto a device with less global memory) and is
	// the checkpoint file size M of the cost model for a job that has
	// never checkpointed.
	MemBytes int64
	// HasCheckpoint marks a job with a committed checkpoint generation:
	// its next checkpoint is incremental, so the cost model's M is the
	// live dirty-set size (DirtyBytes) rather than the full working set.
	HasCheckpoint bool
	// DirtyBytes is the job's live incremental-checkpoint payload — the
	// bytes written since its last committed generation
	// (core.CheckpointStats.DirtyBytes). Only meaningful when
	// HasCheckpoint is true; a clean job migrates for the price of the
	// image overhead plus recompilation.
	DirtyBytes int64
	// RecompileTime is the job's measured program build time (the Tr of
	// the cost model; CheCL records it at clBuildProgram, see
	// core.RestartStats.Recompile).
	RecompileTime vtime.Duration
	// CkptStall is the job's measured application-visible checkpoint
	// stall (core.CheckpointStats.StallTime) when it checkpoints with a
	// speculative drain. Non-zero, it replaces the α·M copy term of the
	// cost model: the drain overlaps the job's own execution, so the job
	// only pays the validation/commit residue, not the full stop-drain.
	CkptStall vtime.Duration
	// Device is the compute device the job currently runs on.
	Device hw.DeviceModel
	// NodeName locates the job.
	NodeName string
}

// Slot is one free compute device the scheduler may move a job onto.
type Slot struct {
	NodeName string
	Device   hw.DeviceModel
	// Key optionally identifies the slot when a node exposes several
	// devices of the same model (a fleet inventory). Empty means
	// NodeName/Device.Name is already unique.
	Key string
}

// key returns the slot's stable identity, used for deterministic
// tie-breaking and for mapping planned moves back onto physical devices.
func (s Slot) key() string {
	if s.Key != "" {
		return s.Key
	}
	return s.NodeName + "/" + s.Device.Name
}

// Move is one planned migration.
type Move struct {
	Job      string
	FromNode string
	ToNode   string
	ToDevice string
	// ToSlot is the stable identity of the chosen slot (Slot.Key, or
	// NodeName/Device.Name when no key was set).
	ToSlot string
	// Gain is the predicted completion-time improvement after paying the
	// migration cost. vtime.Infinity when the job is stranded on a
	// degenerate device and any finite placement rescues it.
	Gain vtime.Duration
	// MigrationCost is the predicted Tm.
	MigrationCost vtime.Duration
}

// Planner decides migrations with a calibrated cost model.
type Planner struct {
	// Model is the fitted Eq. 1 instance (see core.FitCostModel).
	Model core.CostModel
	// MinGain suppresses churn: a move must improve completion time by at
	// least this much. Zero means any positive gain qualifies.
	MinGain vtime.Duration
}

// EstimateRuntime predicts how long work flops take on dev. A degenerate
// device (zero compute rate) reports vtime.Infinity: work placed there
// never completes, and every consumer must treat the estimate as a typed
// rejection (Duration.IsInf) rather than a very large number.
func EstimateRuntime(flops float64, dev hw.DeviceModel) vtime.Duration {
	rate := dev.SustainedRate()
	if rate <= 0 {
		return vtime.Infinity
	}
	return vtime.FromSeconds(flops / rate)
}

// MigrationCost predicts Tm for moving the job. The checkpoint file size M
// is the live incremental dirty set when the job has a committed
// generation, else the full working set, plus a fixed image overhead.
func (p *Planner) MigrationCost(job JobState) vtime.Duration {
	const imageOverhead = 1 << 20 // host image beyond the staged buffers
	if job.CkptStall > 0 {
		// Speculative drain: the buffer copy overlaps the job's own
		// execution, so the job-visible Tm replaces the α·M term with the
		// measured stall residue; only the image overhead still moves
		// synchronously.
		return p.Model.Predict(imageOverhead, job.RecompileTime) + job.CkptStall
	}
	m := job.MemBytes
	if job.HasCheckpoint {
		m = job.DirtyBytes
	}
	return p.Model.Predict(m+imageOverhead, job.RecompileTime)
}

// Fits reports whether the job can run on the slot at all: the device must
// have a positive compute rate (EstimateRuntime would otherwise be
// infinite) and enough global memory for the job's working set.
func (s Slot) Fits(job JobState) bool {
	if s.Device.SustainedRate() <= 0 {
		return false
	}
	if s.Device.GlobalMemory > 0 && job.MemBytes > s.Device.GlobalMemory {
		return false
	}
	return true
}

// Evaluate decides whether moving job onto slot pays off. Slots the job
// does not fit (degenerate device, insufficient global memory) never
// qualify; a job stranded on a degenerate device gains vtime.Infinity from
// any slot it fits.
func (p *Planner) Evaluate(job JobState, slot Slot) (Move, bool) {
	if !slot.Fits(job) {
		return Move{}, false
	}
	stay := EstimateRuntime(job.RemainingFlops, job.Device)
	cost := p.MigrationCost(job)
	move := EstimateRuntime(job.RemainingFlops, slot.Device).SatAdd(cost)
	gain := stay.SatSub(move)
	if !gain.IsInf() && gain <= p.MinGain {
		return Move{}, false
	}
	return Move{
		Job:           job.Name,
		FromNode:      job.NodeName,
		ToNode:        slot.NodeName,
		ToDevice:      slot.Device.Name,
		ToSlot:        slot.key(),
		Gain:          gain,
		MigrationCost: cost,
	}, true
}

// Plan greedily assigns free slots to the jobs that gain the most. Each
// slot is used at most once and each job moves at most once.
//
// The plan is a pure function of the job and slot *sets*: equal-gain
// candidates tie-break on job name, then slot identity, so callers that
// build their inputs from map iteration (a fleet rebalancer re-planning
// every round) get the identical plan regardless of input order.
func (p *Planner) Plan(jobs []JobState, slots []Slot) []Move {
	type candidate struct {
		move Move
		job  int
		slot int
	}
	var cands []candidate
	for ji, job := range jobs {
		for si, slot := range slots {
			if m, ok := p.Evaluate(job, slot); ok {
				cands = append(cands, candidate{move: m, job: ji, slot: si})
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].move.Gain != cands[j].move.Gain {
			return cands[i].move.Gain > cands[j].move.Gain
		}
		if cands[i].move.Job != cands[j].move.Job {
			return cands[i].move.Job < cands[j].move.Job
		}
		return cands[i].move.ToSlot < cands[j].move.ToSlot
	})
	usedJob := map[int]bool{}
	usedSlot := map[string]bool{}
	var plan []Move
	for _, c := range cands {
		if usedJob[c.job] || usedSlot[c.move.ToSlot] {
			continue
		}
		usedJob[c.job] = true
		usedSlot[c.move.ToSlot] = true
		plan = append(plan, c.move)
	}
	return plan
}

// String renders a move.
func (m Move) String() string {
	return fmt.Sprintf("%s: %s -> %s/%s (gain %s, cost %s)",
		m.Job, m.FromNode, m.ToNode, m.ToDevice, m.Gain, m.MigrationCost)
}
