// Package sched implements the dynamic job scheduler the paper presents
// CheCL as an infrastructure for (§IV-C and §VI): given running jobs on a
// heterogeneous GPU cluster, it decides whether migrating a job to a
// faster node — or to a different device kind on the same node — pays off,
// using the fitted migration-cost model Tm = α·M + Tr + β.
//
// "If the performance difference between two nodes or between two compute
// devices for a process is large enough to justify the migration cost,
// the process should be migrated to a higher-performance node or compute
// device." — §IV-C.
package sched

import (
	"fmt"
	"sort"

	"checl/internal/core"
	"checl/internal/hw"
	"checl/internal/vtime"
)

// JobState is the scheduler's view of one running job.
type JobState struct {
	Name string
	// RemainingFlops is the job's estimated remaining computation.
	RemainingFlops float64
	// MemBytes is the job's working set (dominates the checkpoint file
	// size M of the cost model).
	MemBytes int64
	// RecompileTime is the job's measured program build time (the Tr of
	// the cost model; CheCL records it at clBuildProgram, see
	// core.RestartStats.Recompile).
	RecompileTime vtime.Duration
	// Device is the compute device the job currently runs on.
	Device hw.DeviceModel
	// NodeName locates the job.
	NodeName string
}

// Slot is one free compute device the scheduler may move a job onto.
type Slot struct {
	NodeName string
	Device   hw.DeviceModel
}

// Move is one planned migration.
type Move struct {
	Job      string
	FromNode string
	ToNode   string
	ToDevice string
	// Gain is the predicted completion-time improvement after paying the
	// migration cost.
	Gain vtime.Duration
	// MigrationCost is the predicted Tm.
	MigrationCost vtime.Duration
}

// Planner decides migrations with a calibrated cost model.
type Planner struct {
	// Model is the fitted Eq. 1 instance (see core.FitCostModel).
	Model core.CostModel
	// MinGain suppresses churn: a move must improve completion time by at
	// least this much. Zero means any positive gain qualifies.
	MinGain vtime.Duration
}

// deviceEfficiency mirrors the sustained fraction the hw roofline uses.
const deviceEfficiency = 0.55

// EstimateRuntime predicts how long work flops take on dev.
func EstimateRuntime(flops float64, dev hw.DeviceModel) vtime.Duration {
	if dev.GFLOPS <= 0 {
		return vtime.Duration(1<<62 - 1)
	}
	return vtime.FromSeconds(flops / (dev.GFLOPS * 1e9 * deviceEfficiency))
}

// MigrationCost predicts Tm for moving the job (checkpoint file size is
// approximated by the job's working set plus a fixed image overhead).
func (p *Planner) MigrationCost(job JobState) vtime.Duration {
	const imageOverhead = 1 << 20 // host image beyond the staged buffers
	return p.Model.Predict(job.MemBytes+imageOverhead, job.RecompileTime)
}

// Evaluate decides whether moving job onto slot pays off.
func (p *Planner) Evaluate(job JobState, slot Slot) (Move, bool) {
	stay := EstimateRuntime(job.RemainingFlops, job.Device)
	cost := p.MigrationCost(job)
	move := EstimateRuntime(job.RemainingFlops, slot.Device) + cost
	gain := stay - move
	if gain <= p.MinGain {
		return Move{}, false
	}
	return Move{
		Job:           job.Name,
		FromNode:      job.NodeName,
		ToNode:        slot.NodeName,
		ToDevice:      slot.Device.Name,
		Gain:          gain,
		MigrationCost: cost,
	}, true
}

// Plan greedily assigns free slots to the jobs that gain the most. Each
// slot is used at most once and each job moves at most once.
func (p *Planner) Plan(jobs []JobState, slots []Slot) []Move {
	type candidate struct {
		move Move
		job  int
		slot int
	}
	var cands []candidate
	for ji, job := range jobs {
		for si, slot := range slots {
			if m, ok := p.Evaluate(job, slot); ok {
				cands = append(cands, candidate{move: m, job: ji, slot: si})
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].move.Gain != cands[j].move.Gain {
			return cands[i].move.Gain > cands[j].move.Gain
		}
		// Deterministic tie-break.
		return cands[i].move.Job < cands[j].move.Job
	})
	usedJob := map[int]bool{}
	usedSlot := map[int]bool{}
	var plan []Move
	for _, c := range cands {
		if usedJob[c.job] || usedSlot[c.slot] {
			continue
		}
		usedJob[c.job] = true
		usedSlot[c.slot] = true
		plan = append(plan, c.move)
	}
	return plan
}

// String renders a move.
func (m Move) String() string {
	return fmt.Sprintf("%s: %s -> %s/%s (gain %s, cost %s)",
		m.Job, m.FromNode, m.ToNode, m.ToDevice, m.Gain, m.MigrationCost)
}
