package ocl

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"
	"sync/atomic"

	"checl/internal/clc"
	"checl/internal/hw"
	"checl/internal/vtime"
)

// handle class tags, encoded in the low nibble of every handle so that
// diagnostics can name the class of a stray handle.
const (
	tagPlatform = iota + 1
	tagDevice
	tagContext
	tagQueue
	tagMem
	tagSampler
	tagProgram
	tagKernel
	tagEvent
)

// runtimeGen distinguishes runtime instances: a fresh runtime (e.g. the
// new API proxy forked on restart) mints handles from a different
// generation, so recreated objects get different handle values — the
// behaviour that makes CheCL's handle rebinding necessary.
var runtimeGen atomic.Uint64

// Runtime is one in-process OpenCL implementation instance. All methods
// are safe for concurrent use.
type Runtime struct {
	vendor *Vendor
	spec   hw.SystemSpec
	clock  *vtime.Clock

	mu   sync.Mutex
	gen  uint64
	seq  uint64
	plat *platform

	devices  map[DeviceID]*device
	contexts map[Context]*context
	queues   map[CommandQueue]*queueObj
	buffers  map[Mem]*buffer
	samplers map[Sampler]*samplerObj
	programs map[Program]*programObj
	kernels  map[Kernel]*kernelObj
	events   map[Event]*eventObj
}

var _ API = (*Runtime)(nil)

type platform struct {
	id      PlatformID
	info    PlatformInfo
	devices []DeviceID
}

type device struct {
	id    DeviceID
	model hw.DeviceModel
}

type context struct {
	id        Context
	refs      int
	devices   []DeviceID
	allocated int64
	memLimit  int64
}

type queueObj struct {
	id    CommandQueue
	refs  int
	ctx   Context
	dev   DeviceID
	props QueueProps
	tail  vtime.Time
}

type buffer struct {
	id         Mem
	refs       int
	ctx        Context
	flags      MemFlags
	size       int64
	data       []byte
	useHostPtr bool
	hostPtr    []byte // aliased host region for MemUseHostPtr
}

type samplerObj struct {
	id         Sampler
	refs       int
	ctx        Context
	normalized bool
	amode      AddressingMode
	fmode      FilterMode
}

type programObj struct {
	id         Program
	refs       int
	ctx        Context
	source     string
	fromBinary bool
	built      bool
	buildLog   string
	options    string
	compiled   *clc.Program
}

type argSlot struct {
	set   bool
	size  int64
	bytes []byte // nil for __local arguments
}

type kernelObj struct {
	id   Kernel
	refs int
	prog Program
	name string
	sig  clc.KernelSig
	args []argSlot
}

type eventObj struct {
	id      Event
	refs    int
	queue   CommandQueue
	kind    string
	profile EventProfile
}

// NewRuntime constructs a runtime for the given vendor on a machine with
// the given specification and clock. The clock is shared with the owning
// (simulated) process so that blocking API calls advance process time.
func NewRuntime(vendor *Vendor, spec hw.SystemSpec, clock *vtime.Clock) *Runtime {
	r := &Runtime{
		vendor:   vendor,
		spec:     spec,
		clock:    clock,
		gen:      runtimeGen.Add(1),
		devices:  map[DeviceID]*device{},
		contexts: map[Context]*context{},
		queues:   map[CommandQueue]*queueObj{},
		buffers:  map[Mem]*buffer{},
		samplers: map[Sampler]*samplerObj{},
		programs: map[Program]*programObj{},
		kernels:  map[Kernel]*kernelObj{},
		events:   map[Event]*eventObj{},
	}
	r.plat = &platform{
		id: PlatformID(r.newHandle(tagPlatform)),
		info: PlatformInfo{
			Name:    vendor.PlatformName,
			Vendor:  vendor.PlatformVendor,
			Version: vendor.PlatformVersion,
			Profile: "FULL_PROFILE",
		},
	}
	for _, m := range vendor.Devices {
		d := &device{id: DeviceID(r.newHandle(tagDevice)), model: m}
		r.devices[d.id] = d
		r.plat.devices = append(r.plat.devices, d.id)
	}
	return r
}

// Vendor returns the vendor this runtime implements.
func (r *Runtime) Vendor() *Vendor { return r.vendor }

// Clock returns the virtual clock the runtime charges costs to.
func (r *Runtime) Clock() *vtime.Clock { return r.clock }

// newHandle mints an opaque handle value. Callers must hold r.mu or be in
// the constructor.
func (r *Runtime) newHandle(tag int) uint64 {
	r.seq++
	return r.gen<<40 | r.seq<<8 | uint64(tag)
}

// ---- platform & device queries ----

// GetPlatformIDs implements clGetPlatformIDs.
func (r *Runtime) GetPlatformIDs() ([]PlatformID, error) {
	return []PlatformID{r.plat.id}, nil
}

// GetPlatformInfo implements clGetPlatformInfo.
func (r *Runtime) GetPlatformInfo(p PlatformID) (PlatformInfo, error) {
	if p != r.plat.id {
		return PlatformInfo{}, Errf("clGetPlatformInfo", InvalidPlatform, "unknown platform %#x", uint64(p))
	}
	return r.plat.info, nil
}

// GetDeviceIDs implements clGetDeviceIDs.
func (r *Runtime) GetDeviceIDs(p PlatformID, mask DeviceTypeMask) ([]DeviceID, error) {
	if p != r.plat.id {
		return nil, Errf("clGetDeviceIDs", InvalidPlatform, "unknown platform %#x", uint64(p))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	selects := func(t hw.DeviceType) bool {
		if mask == DeviceTypeAll {
			return true
		}
		switch t {
		case hw.DeviceCPU:
			return mask&DeviceTypeCPU != 0
		case hw.DeviceGPU:
			return mask&(DeviceTypeGPU|DeviceTypeDefault) != 0
		default:
			return false
		}
	}
	var out []DeviceID
	for _, id := range r.plat.devices {
		if selects(r.devices[id].model.Type) {
			out = append(out, id)
		}
	}
	if len(out) == 0 {
		return nil, Errf("clGetDeviceIDs", DeviceNotFound, "no device matches mask %#x", uint32(mask))
	}
	return out, nil
}

// GetDeviceInfo implements clGetDeviceInfo.
func (r *Runtime) GetDeviceInfo(id DeviceID) (DeviceInfo, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	d, ok := r.devices[id]
	if !ok {
		return DeviceInfo{}, Errf("clGetDeviceInfo", InvalidDevice, "unknown device %#x", uint64(id))
	}
	m := d.model
	return DeviceInfo{
		Name:             m.Name,
		Vendor:           m.Vendor,
		Type:             m.Type,
		GlobalMemSize:    m.GlobalMemory,
		MaxWorkGroupSize: m.MaxWorkGroupSize,
		MaxWorkItemSizes: m.MaxWorkItemSizes,
		ComputeUnits:     m.ComputeUnits,
		MaxAllocSize:     m.GlobalMemory / 4,
	}, nil
}

// ---- contexts ----

// CreateContext implements clCreateContext.
func (r *Runtime) CreateContext(devices []DeviceID) (Context, error) {
	if len(devices) == 0 {
		return 0, Errf("clCreateContext", InvalidValue, "no devices")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	limit := int64(0)
	for _, id := range devices {
		d, ok := r.devices[id]
		if !ok {
			return 0, Errf("clCreateContext", InvalidDevice, "unknown device %#x", uint64(id))
		}
		if limit == 0 || d.model.GlobalMemory < limit {
			limit = d.model.GlobalMemory
		}
	}
	c := &context{
		id:       Context(r.newHandle(tagContext)),
		refs:     1,
		devices:  append([]DeviceID(nil), devices...),
		memLimit: limit,
	}
	r.contexts[c.id] = c
	return c.id, nil
}

// RetainContext implements clRetainContext.
func (r *Runtime) RetainContext(id Context) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.contexts[id]
	if !ok {
		return Errf("clRetainContext", InvalidContext, "unknown context %#x", uint64(id))
	}
	c.refs++
	return nil
}

// ReleaseContext implements clReleaseContext.
func (r *Runtime) ReleaseContext(id Context) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.contexts[id]
	if !ok {
		return Errf("clReleaseContext", InvalidContext, "unknown context %#x", uint64(id))
	}
	c.refs--
	if c.refs <= 0 {
		delete(r.contexts, id)
	}
	return nil
}

// ---- command queues ----

// CreateCommandQueue implements clCreateCommandQueue.
func (r *Runtime) CreateCommandQueue(c Context, d DeviceID, props QueueProps) (CommandQueue, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ctx, ok := r.contexts[c]
	if !ok {
		return 0, Errf("clCreateCommandQueue", InvalidContext, "unknown context %#x", uint64(c))
	}
	found := false
	for _, id := range ctx.devices {
		if id == d {
			found = true
			break
		}
	}
	if !found {
		return 0, Errf("clCreateCommandQueue", InvalidDevice, "device %#x not in context", uint64(d))
	}
	q := &queueObj{
		id:    CommandQueue(r.newHandle(tagQueue)),
		refs:  1,
		ctx:   c,
		dev:   d,
		props: props,
		tail:  r.clock.Now(),
	}
	r.queues[q.id] = q
	return q.id, nil
}

// RetainCommandQueue implements clRetainCommandQueue.
func (r *Runtime) RetainCommandQueue(id CommandQueue) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	q, ok := r.queues[id]
	if !ok {
		return Errf("clRetainCommandQueue", InvalidCommandQueue, "unknown queue %#x", uint64(id))
	}
	q.refs++
	return nil
}

// ReleaseCommandQueue implements clReleaseCommandQueue.
func (r *Runtime) ReleaseCommandQueue(id CommandQueue) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	q, ok := r.queues[id]
	if !ok {
		return Errf("clReleaseCommandQueue", InvalidCommandQueue, "unknown queue %#x", uint64(id))
	}
	q.refs--
	if q.refs <= 0 {
		delete(r.queues, id)
	}
	return nil
}

// ---- buffers ----

// CreateBuffer implements clCreateBuffer.
func (r *Runtime) CreateBuffer(c Context, flags MemFlags, size int64, hostData []byte) (Mem, error) {
	if size <= 0 {
		return 0, Errf("clCreateBuffer", InvalidBufferSize, "size %d", size)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ctx, ok := r.contexts[c]
	if !ok {
		return 0, Errf("clCreateBuffer", InvalidContext, "unknown context %#x", uint64(c))
	}
	if ctx.allocated+size > ctx.memLimit {
		return 0, Errf("clCreateBuffer", MemObjectAllocFailure,
			"allocation of %d bytes exceeds device memory (%d of %d in use)",
			size, ctx.allocated, ctx.memLimit)
	}
	useHost := flags&MemUseHostPtr != 0
	if (useHost || flags&MemCopyHostPtr != 0) && hostData == nil {
		return 0, Errf("clCreateBuffer", InvalidValue, "host pointer flags set but no host data")
	}
	if (useHost || flags&MemCopyHostPtr != 0) && int64(len(hostData)) < size {
		return 0, Errf("clCreateBuffer", InvalidValue, "host data smaller than buffer size")
	}
	b := &buffer{
		id:         Mem(r.newHandle(tagMem)),
		refs:       1,
		ctx:        c,
		flags:      flags,
		size:       size,
		data:       make([]byte, size),
		useHostPtr: useHost,
	}
	if flags&MemCopyHostPtr != 0 {
		copy(b.data, hostData[:size])
	}
	if useHost {
		b.hostPtr = hostData[:size]
		copy(b.data, hostData[:size])
	}
	ctx.allocated += size
	r.buffers[b.id] = b
	return b.id, nil
}

// RetainMemObject implements clRetainMemObject.
func (r *Runtime) RetainMemObject(id Mem) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.buffers[id]
	if !ok {
		return Errf("clRetainMemObject", InvalidMemObject, "unknown mem object %#x", uint64(id))
	}
	b.refs++
	return nil
}

// ReleaseMemObject implements clReleaseMemObject.
func (r *Runtime) ReleaseMemObject(id Mem) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.buffers[id]
	if !ok {
		return Errf("clReleaseMemObject", InvalidMemObject, "unknown mem object %#x", uint64(id))
	}
	b.refs--
	if b.refs <= 0 {
		if ctx, ok := r.contexts[b.ctx]; ok {
			ctx.allocated -= b.size
		}
		delete(r.buffers, id)
	}
	return nil
}

// ---- samplers ----

// CreateSampler implements clCreateSampler.
func (r *Runtime) CreateSampler(c Context, normalized bool, amode AddressingMode, fmode FilterMode) (Sampler, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.contexts[c]; !ok {
		return 0, Errf("clCreateSampler", InvalidContext, "unknown context %#x", uint64(c))
	}
	s := &samplerObj{
		id:         Sampler(r.newHandle(tagSampler)),
		refs:       1,
		ctx:        c,
		normalized: normalized,
		amode:      amode,
		fmode:      fmode,
	}
	r.samplers[s.id] = s
	return s.id, nil
}

// RetainSampler implements clRetainSampler.
func (r *Runtime) RetainSampler(id Sampler) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.samplers[id]
	if !ok {
		return Errf("clRetainSampler", InvalidSampler, "unknown sampler %#x", uint64(id))
	}
	s.refs++
	return nil
}

// ReleaseSampler implements clReleaseSampler.
func (r *Runtime) ReleaseSampler(id Sampler) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.samplers[id]
	if !ok {
		return Errf("clReleaseSampler", InvalidSampler, "unknown sampler %#x", uint64(id))
	}
	s.refs--
	if s.refs <= 0 {
		delete(r.samplers, id)
	}
	return nil
}

// ---- programs ----

// CreateProgramWithSource implements clCreateProgramWithSource.
func (r *Runtime) CreateProgramWithSource(c Context, source string) (Program, error) {
	if source == "" {
		return 0, Errf("clCreateProgramWithSource", InvalidValue, "empty source")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.contexts[c]; !ok {
		return 0, Errf("clCreateProgramWithSource", InvalidContext, "unknown context %#x", uint64(c))
	}
	p := &programObj{
		id:     Program(r.newHandle(tagProgram)),
		refs:   1,
		ctx:    c,
		source: source,
	}
	r.programs[p.id] = p
	return p.id, nil
}

// programBinary is the serialised "device binary" format; it embeds the
// producing vendor so that a binary built for one implementation is
// rejected by another — the incompatibility that makes the paper deprecate
// clCreateProgramWithBinary under CheCL (§III-D).
type programBinary struct {
	Vendor string
	Source string
}

// CreateProgramWithBinary implements clCreateProgramWithBinary.
func (r *Runtime) CreateProgramWithBinary(c Context, d DeviceID, binary []byte) (Program, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.contexts[c]; !ok {
		return 0, Errf("clCreateProgramWithBinary", InvalidContext, "unknown context %#x", uint64(c))
	}
	if _, ok := r.devices[d]; !ok {
		return 0, Errf("clCreateProgramWithBinary", InvalidDevice, "unknown device %#x", uint64(d))
	}
	var pb programBinary
	if err := gob.NewDecoder(bytes.NewReader(binary)).Decode(&pb); err != nil {
		return 0, Errf("clCreateProgramWithBinary", InvalidBinary, "undecodable binary: %v", err)
	}
	if pb.Vendor != r.vendor.PlatformVendor {
		return 0, Errf("clCreateProgramWithBinary", InvalidBinary,
			"binary built by %q cannot load on %q", pb.Vendor, r.vendor.PlatformVendor)
	}
	p := &programObj{
		id:         Program(r.newHandle(tagProgram)),
		refs:       1,
		ctx:        c,
		source:     pb.Source,
		fromBinary: true,
	}
	r.programs[p.id] = p
	return p.id, nil
}

// BuildProgram implements clBuildProgram. The build charges the vendor's
// modelled compile time to the clock; AMD's compiler model is markedly
// slower, reproducing the Fig. 7 recompilation asymmetry.
func (r *Runtime) BuildProgram(id Program, options string) error {
	r.mu.Lock()
	p, ok := r.programs[id]
	if !ok {
		r.mu.Unlock()
		return Errf("clBuildProgram", InvalidProgram, "unknown program %#x", uint64(id))
	}
	source := p.source
	fromBinary := p.fromBinary
	r.mu.Unlock()

	compiled, cerr := clc.Compile(source)
	nKernels := 0
	if cerr == nil {
		nKernels = len(compiled.Sigs)
	}
	// Loading a prebuilt binary skips the front end; charge only the base.
	var buildTime vtime.Duration
	if fromBinary {
		buildTime = r.vendor.Compiler.Base / 4
	} else {
		buildTime = r.vendor.Compiler.BuildTime(len(source), nKernels)
	}
	r.clock.Advance(buildTime)

	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok = r.programs[id]
	if !ok {
		return Errf("clBuildProgram", InvalidProgram, "program released during build")
	}
	p.options = options
	if cerr != nil {
		p.built = false
		p.buildLog = cerr.Error()
		return Errf("clBuildProgram", BuildProgramFailure, "%v", cerr)
	}
	p.built = true
	p.buildLog = "build succeeded"
	p.compiled = compiled
	return nil
}

// GetProgramBuildInfo implements clGetProgramBuildInfo.
func (r *Runtime) GetProgramBuildInfo(id Program, d DeviceID) (BuildInfo, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.programs[id]
	if !ok {
		return BuildInfo{}, Errf("clGetProgramBuildInfo", InvalidProgram, "unknown program %#x", uint64(id))
	}
	return BuildInfo{Success: p.built, Log: p.buildLog}, nil
}

// GetProgramBinary implements clGetProgramInfo(CL_PROGRAM_BINARIES).
func (r *Runtime) GetProgramBinary(id Program) ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.programs[id]
	if !ok {
		return nil, Errf("clGetProgramInfo", InvalidProgram, "unknown program %#x", uint64(id))
	}
	if !p.built {
		return nil, Errf("clGetProgramInfo", InvalidProgramExec, "program not built")
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(programBinary{Vendor: r.vendor.PlatformVendor, Source: p.source}); err != nil {
		return nil, Errf("clGetProgramInfo", OutOfHostMemory, "%v", err)
	}
	return buf.Bytes(), nil
}

// RetainProgram implements clRetainProgram.
func (r *Runtime) RetainProgram(id Program) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.programs[id]
	if !ok {
		return Errf("clRetainProgram", InvalidProgram, "unknown program %#x", uint64(id))
	}
	p.refs++
	return nil
}

// ReleaseProgram implements clReleaseProgram.
func (r *Runtime) ReleaseProgram(id Program) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.programs[id]
	if !ok {
		return Errf("clReleaseProgram", InvalidProgram, "unknown program %#x", uint64(id))
	}
	p.refs--
	if p.refs <= 0 {
		delete(r.programs, id)
	}
	return nil
}

// ---- kernels ----

// CreateKernel implements clCreateKernel.
func (r *Runtime) CreateKernel(pid Program, name string) (Kernel, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.programs[pid]
	if !ok {
		return 0, Errf("clCreateKernel", InvalidProgram, "unknown program %#x", uint64(pid))
	}
	if !p.built || p.compiled == nil {
		return 0, Errf("clCreateKernel", InvalidProgramExec, "program not built")
	}
	sig, ok := clc.Lookup(p.compiled.Sigs, name)
	if !ok {
		return 0, Errf("clCreateKernel", InvalidKernelName, "no kernel %q in program", name)
	}
	k := &kernelObj{
		id:   Kernel(r.newHandle(tagKernel)),
		refs: 1,
		prog: pid,
		name: name,
		sig:  sig,
		args: make([]argSlot, len(sig.Params)),
	}
	r.kernels[k.id] = k
	return k.id, nil
}

// RetainKernel implements clRetainKernel.
func (r *Runtime) RetainKernel(id Kernel) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	k, ok := r.kernels[id]
	if !ok {
		return Errf("clRetainKernel", InvalidKernel, "unknown kernel %#x", uint64(id))
	}
	k.refs++
	return nil
}

// ReleaseKernel implements clReleaseKernel.
func (r *Runtime) ReleaseKernel(id Kernel) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	k, ok := r.kernels[id]
	if !ok {
		return Errf("clReleaseKernel", InvalidKernel, "unknown kernel %#x", uint64(id))
	}
	k.refs--
	if k.refs <= 0 {
		delete(r.kernels, id)
	}
	return nil
}

// SetKernelArg implements clSetKernelArg. value carries the raw argument
// bytes; for __local parameters value must be nil and size is the per-
// work-group allocation.
func (r *Runtime) SetKernelArg(id Kernel, index int, size int64, value []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	k, ok := r.kernels[id]
	if !ok {
		return Errf("clSetKernelArg", InvalidKernel, "unknown kernel %#x", uint64(id))
	}
	if index < 0 || index >= len(k.args) {
		return Errf("clSetKernelArg", InvalidArgIndex, "index %d of %d", index, len(k.args))
	}
	kind := k.sig.Params[index].Kind
	if kind == clc.ParamLocalSize {
		if value != nil {
			return Errf("clSetKernelArg", InvalidArgValue, "__local argument must have a NULL value")
		}
		if size <= 0 {
			return Errf("clSetKernelArg", InvalidArgSize, "__local argument needs a positive size")
		}
		k.args[index] = argSlot{set: true, size: size}
		return nil
	}
	if value == nil {
		return Errf("clSetKernelArg", InvalidArgValue, "NULL value for non-local argument %d", index)
	}
	if int64(len(value)) != size {
		return Errf("clSetKernelArg", InvalidArgSize, "size %d does not match value length %d", size, len(value))
	}
	k.args[index] = argSlot{set: true, size: size, bytes: append([]byte(nil), value...)}
	return nil
}

var _ = fmt.Sprintf // keep fmt imported if diagnostics change
