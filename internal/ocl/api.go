package ocl

import (
	"checl/internal/hw"
	"checl/internal/vtime"
)

// Opaque handle types. In OpenCL every handle is an opaque pointer
// (typedef struct _cl_context* cl_context); in this runtime a handle is an
// opaque 64-bit value whose numeric value changes when the object is
// recreated — exactly the property that forces CheCL to rebind handles on
// restart (§III-B).
type (
	PlatformID   uint64
	DeviceID     uint64
	Context      uint64
	CommandQueue uint64
	Mem          uint64
	Sampler      uint64
	Program      uint64
	Kernel       uint64
	Event        uint64
)

// DeviceTypeMask selects devices in GetDeviceIDs.
type DeviceTypeMask uint32

// Device selection masks (mirror CL_DEVICE_TYPE_*).
const (
	DeviceTypeCPU     DeviceTypeMask = 1 << 1
	DeviceTypeGPU     DeviceTypeMask = 1 << 2
	DeviceTypeAll     DeviceTypeMask = 0xFFFFFFFF
	DeviceTypeDefault DeviceTypeMask = 1 << 0
)

// MemFlags qualifies buffer creation (mirror CL_MEM_*).
type MemFlags uint32

// Memory flags.
const (
	MemReadWrite    MemFlags = 1 << 0
	MemWriteOnly    MemFlags = 1 << 1
	MemReadOnly     MemFlags = 1 << 2
	MemUseHostPtr   MemFlags = 1 << 3
	MemAllocHostPtr MemFlags = 1 << 4
	MemCopyHostPtr  MemFlags = 1 << 5
)

// QueueProps qualifies command-queue creation.
type QueueProps uint32

// Queue properties.
const (
	QueueProfilingEnable QueueProps = 1 << 1
)

// Addressing and filter modes for samplers.
type (
	AddressingMode uint32
	FilterMode     uint32
)

// Sampler modes.
const (
	AddressClamp  AddressingMode = 0x1132
	AddressRepeat AddressingMode = 0x1133
	FilterNearest FilterMode     = 0x1140
	FilterLinear  FilterMode     = 0x1141
)

// PlatformInfo describes one platform.
type PlatformInfo struct {
	Name    string
	Vendor  string
	Version string
	Profile string
}

// DeviceInfo describes one device; applications use it to size problems
// (the paper notes oclFDTD3d and oclMatVecMul size their working sets from
// the available device memory).
type DeviceInfo struct {
	Name             string
	Vendor           string
	Type             hw.DeviceType
	GlobalMemSize    int64
	MaxWorkGroupSize int
	MaxWorkItemSizes [3]int
	ComputeUnits     int
	MaxAllocSize     int64
}

// EventProfile is the profiling information of a completed command
// (mirrors CL_PROFILING_COMMAND_*).
type EventProfile struct {
	Queued vtime.Time
	Submit vtime.Time
	Start  vtime.Time
	End    vtime.Time
}

// BuildInfo is the result of a program build on one device.
type BuildInfo struct {
	Success bool
	Log     string
}

// API is the OpenCL entry-point surface shared by the in-process runtime
// (Runtime) and the forwarding proxy client (internal/proxy.Client). It is
// the boundary at which CheCL intercepts calls: everything the application
// can do to the OpenCL implementation goes through this interface.
//
// Signatures are Go-ified (multiple returns instead of out-parameters,
// []byte instead of void*), but each method corresponds one-to-one to the
// OpenCL C API function named in its comment.
type API interface {
	// clGetPlatformIDs
	GetPlatformIDs() ([]PlatformID, error)
	// clGetPlatformInfo
	GetPlatformInfo(p PlatformID) (PlatformInfo, error)
	// clGetDeviceIDs
	GetDeviceIDs(p PlatformID, mask DeviceTypeMask) ([]DeviceID, error)
	// clGetDeviceInfo
	GetDeviceInfo(d DeviceID) (DeviceInfo, error)

	// clCreateContext
	CreateContext(devices []DeviceID) (Context, error)
	// clRetainContext
	RetainContext(c Context) error
	// clReleaseContext
	ReleaseContext(c Context) error

	// clCreateCommandQueue
	CreateCommandQueue(c Context, d DeviceID, props QueueProps) (CommandQueue, error)
	// clRetainCommandQueue
	RetainCommandQueue(q CommandQueue) error
	// clReleaseCommandQueue
	ReleaseCommandQueue(q CommandQueue) error

	// clCreateBuffer; hostData is consulted for MemCopyHostPtr and
	// MemUseHostPtr.
	CreateBuffer(c Context, flags MemFlags, size int64, hostData []byte) (Mem, error)
	// clRetainMemObject
	RetainMemObject(m Mem) error
	// clReleaseMemObject
	ReleaseMemObject(m Mem) error

	// clCreateSampler
	CreateSampler(c Context, normalized bool, amode AddressingMode, fmode FilterMode) (Sampler, error)
	// clRetainSampler
	RetainSampler(s Sampler) error
	// clReleaseSampler
	ReleaseSampler(s Sampler) error

	// clCreateProgramWithSource
	CreateProgramWithSource(c Context, source string) (Program, error)
	// clCreateProgramWithBinary
	CreateProgramWithBinary(c Context, d DeviceID, binary []byte) (Program, error)
	// clBuildProgram
	BuildProgram(p Program, options string) error
	// clGetProgramBuildInfo
	GetProgramBuildInfo(p Program, d DeviceID) (BuildInfo, error)
	// clGetProgramInfo(CL_PROGRAM_BINARIES)
	GetProgramBinary(p Program) ([]byte, error)
	// clRetainProgram
	RetainProgram(p Program) error
	// clReleaseProgram
	ReleaseProgram(p Program) error

	// clCreateKernel
	CreateKernel(p Program, name string) (Kernel, error)
	// clRetainKernel
	RetainKernel(k Kernel) error
	// clReleaseKernel
	ReleaseKernel(k Kernel) error
	// clSetKernelArg: value carries the raw argument bytes; for __local
	// parameters value is nil and size is the allocation size — exactly
	// the (const void*, size_t) contract whose ambiguity CheCL resolves
	// by signature parsing.
	SetKernelArg(k Kernel, index int, size int64, value []byte) error

	// clEnqueueWriteBuffer
	EnqueueWriteBuffer(q CommandQueue, m Mem, blocking bool, offset int64, data []byte, waits []Event) (Event, error)
	// clEnqueueReadBuffer
	EnqueueReadBuffer(q CommandQueue, m Mem, blocking bool, offset, size int64, waits []Event) ([]byte, Event, error)
	// clEnqueueCopyBuffer
	EnqueueCopyBuffer(q CommandQueue, src, dst Mem, srcOff, dstOff, size int64, waits []Event) (Event, error)
	// clEnqueueNDRangeKernel
	EnqueueNDRangeKernel(q CommandQueue, k Kernel, dims int, offset, global, local [3]int, waits []Event) (Event, error)
	// clEnqueueMarker — the call CheCL uses to mint dummy events on
	// restart (§III-C).
	EnqueueMarker(q CommandQueue) (Event, error)
	// clEnqueueBarrier
	EnqueueBarrier(q CommandQueue) error

	// clFlush
	Flush(q CommandQueue) error
	// clFinish
	Finish(q CommandQueue) error
	// clWaitForEvents
	WaitForEvents(events []Event) error
	// clGetMemObjectInfo
	GetMemObjectInfo(m Mem) (MemObjectInfo, error)
	// clGetKernelInfo
	GetKernelInfo(k Kernel) (KernelInfo, error)
	// clGetContextInfo
	GetContextInfo(c Context) (ContextInfo, error)
	// clGetCommandQueueInfo
	GetCommandQueueInfo(q CommandQueue) (CommandQueueInfo, error)
	// clGetKernelWorkGroupInfo
	GetKernelWorkGroupInfo(k Kernel, d DeviceID) (KernelWorkGroupInfo, error)

	// clGetEventProfilingInfo
	GetEventProfile(e Event) (EventProfile, error)
	// clRetainEvent
	RetainEvent(e Event) error
	// clReleaseEvent
	ReleaseEvent(e Event) error
}
