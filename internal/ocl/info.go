package ocl

// Info-query API surface (clGet*Info). These matter to CheCL beyond mere
// completeness: queries that return handles (a kernel's program, a
// queue's context and device) must be translated *back* from real handle
// space into CheCL handle space by the interposition layer, the reverse
// of the translation every other call performs.

// MemObjectInfo mirrors clGetMemObjectInfo.
type MemObjectInfo struct {
	Size     int64
	Flags    MemFlags
	Context  Context
	RefCount int
}

// KernelInfo mirrors clGetKernelInfo.
type KernelInfo struct {
	FunctionName string
	NumArgs      int
	Program      Program
	Context      Context
	RefCount     int
}

// ContextInfo mirrors clGetContextInfo.
type ContextInfo struct {
	Devices  []DeviceID
	RefCount int
}

// CommandQueueInfo mirrors clGetCommandQueueInfo.
type CommandQueueInfo struct {
	Context  Context
	Device   DeviceID
	Props    QueueProps
	RefCount int
}

// KernelWorkGroupInfo mirrors clGetKernelWorkGroupInfo.
type KernelWorkGroupInfo struct {
	WorkGroupSize        int
	CompileWorkGroupSize [3]int
	LocalMemSize         int64
}

// GetMemObjectInfo implements clGetMemObjectInfo.
func (r *Runtime) GetMemObjectInfo(id Mem) (MemObjectInfo, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.buffers[id]
	if !ok {
		return MemObjectInfo{}, Errf("clGetMemObjectInfo", InvalidMemObject, "unknown mem object %#x", uint64(id))
	}
	return MemObjectInfo{Size: b.size, Flags: b.flags, Context: b.ctx, RefCount: b.refs}, nil
}

// GetKernelInfo implements clGetKernelInfo.
func (r *Runtime) GetKernelInfo(id Kernel) (KernelInfo, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	k, ok := r.kernels[id]
	if !ok {
		return KernelInfo{}, Errf("clGetKernelInfo", InvalidKernel, "unknown kernel %#x", uint64(id))
	}
	var ctx Context
	if p, ok := r.programs[k.prog]; ok {
		ctx = p.ctx
	}
	return KernelInfo{
		FunctionName: k.name,
		NumArgs:      len(k.args),
		Program:      k.prog,
		Context:      ctx,
		RefCount:     k.refs,
	}, nil
}

// GetContextInfo implements clGetContextInfo.
func (r *Runtime) GetContextInfo(id Context) (ContextInfo, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.contexts[id]
	if !ok {
		return ContextInfo{}, Errf("clGetContextInfo", InvalidContext, "unknown context %#x", uint64(id))
	}
	return ContextInfo{Devices: append([]DeviceID(nil), c.devices...), RefCount: c.refs}, nil
}

// GetCommandQueueInfo implements clGetCommandQueueInfo.
func (r *Runtime) GetCommandQueueInfo(id CommandQueue) (CommandQueueInfo, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	q, ok := r.queues[id]
	if !ok {
		return CommandQueueInfo{}, Errf("clGetCommandQueueInfo", InvalidCommandQueue, "unknown queue %#x", uint64(id))
	}
	return CommandQueueInfo{Context: q.ctx, Device: q.dev, Props: q.props, RefCount: q.refs}, nil
}

// GetKernelWorkGroupInfo implements clGetKernelWorkGroupInfo.
func (r *Runtime) GetKernelWorkGroupInfo(id Kernel, d DeviceID) (KernelWorkGroupInfo, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.kernels[id]; !ok {
		return KernelWorkGroupInfo{}, Errf("clGetKernelWorkGroupInfo", InvalidKernel, "unknown kernel %#x", uint64(id))
	}
	dev, ok := r.devices[d]
	if !ok {
		return KernelWorkGroupInfo{}, Errf("clGetKernelWorkGroupInfo", InvalidDevice, "unknown device %#x", uint64(d))
	}
	return KernelWorkGroupInfo{
		WorkGroupSize: dev.model.MaxWorkGroupSize,
		LocalMemSize:  32 << 10, // 32 KiB local memory, typical of the era
	}, nil
}
