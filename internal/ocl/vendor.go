package ocl

import "checl/internal/hw"

// Vendor describes one OpenCL implementation: its platform identity, the
// devices it exposes, and its compiler's cost model. The two constructors
// mirror the implementations used in the paper's evaluation.
type Vendor struct {
	PlatformName    string
	PlatformVendor  string
	PlatformVersion string
	Devices         []hw.DeviceModel
	Compiler        hw.CompileModel
}

// NVIDIA returns the NVIDIA-like OpenCL implementation: one platform
// exposing only the Tesla C1060 GPU. (The paper notes NVIDIA OpenCL did
// not yet support CPU devices.)
func NVIDIA() *Vendor {
	return &Vendor{
		PlatformName:    "NVIDIA CUDA",
		PlatformVendor:  "NVIDIA Corporation",
		PlatformVersion: "OpenCL 1.0 CUDA 3.0.1",
		Devices:         []hw.DeviceModel{hw.TeslaC1060()},
		Compiler:        hw.NVIDIACompiler(),
	}
}

// AMD returns the AMD-like OpenCL implementation: one platform exposing
// the Radeon HD5870 GPU and the Core i7 CPU device, complying with the
// OpenCL requirement to support CPU devices.
func AMD() *Vendor {
	return &Vendor{
		PlatformName:    "AMD Accelerated Parallel Processing",
		PlatformVendor:  "Advanced Micro Devices, Inc.",
		PlatformVersion: "OpenCL 1.0 ATI-Stream-v2.1",
		Devices:         []hw.DeviceModel{hw.RadeonHD5870(), hw.CoreI7920()},
		Compiler:        hw.AMDCompiler(),
	}
}

// AMDCPUOnly returns an AMD-like implementation exposing only the CPU
// device — the configuration a node without any GPU would present, used
// by the migration experiments.
func AMDCPUOnly() *Vendor {
	v := AMD()
	v.Devices = []hw.DeviceModel{hw.CoreI7920()}
	return v
}
