// Package ocl implements the "vendor OpenCL implementation" of the
// simulation: a complete OpenCL-1.0-style runtime with platforms, devices,
// contexts, command queues, buffers, programs, kernels, events and
// samplers, executing kernels with the internal/clc interpreter and
// accounting all costs on a virtual timeline.
//
// Two vendor flavours are provided (NVIDIA-like and AMD-like, see
// vendor.go) so that the CheCL layer above can demonstrate restarting an
// application under a different OpenCL implementation, as §III of the
// paper describes.
package ocl

import "fmt"

// Status is an OpenCL status/error code. The values mirror CL/cl.h.
type Status int32

// Status codes used by this runtime.
const (
	Success                Status = 0
	DeviceNotFound         Status = -1
	CompileProgramFailure  Status = -15
	MemObjectAllocFailure  Status = -4
	OutOfResources         Status = -5
	OutOfHostMemory        Status = -6
	BuildProgramFailure    Status = -11
	InvalidValue           Status = -30
	InvalidDeviceType      Status = -31
	InvalidPlatform        Status = -32
	InvalidDevice          Status = -33
	InvalidContext         Status = -34
	InvalidQueueProperties Status = -35
	InvalidCommandQueue    Status = -36
	InvalidMemObject       Status = -38
	InvalidBinary          Status = -42
	InvalidBuildOptions    Status = -43
	InvalidProgram         Status = -44
	InvalidProgramExec     Status = -45
	InvalidKernelName      Status = -46
	InvalidKernel          Status = -48
	InvalidArgIndex        Status = -49
	InvalidArgValue        Status = -50
	InvalidArgSize         Status = -51
	InvalidKernelArgs      Status = -52
	InvalidWorkDimension   Status = -53
	InvalidWorkGroupSize   Status = -54
	InvalidWorkItemSize    Status = -55
	InvalidEventWaitList   Status = -57
	InvalidEvent           Status = -58
	InvalidOperation       Status = -59
	InvalidBufferSize      Status = -61
	InvalidSampler         Status = -41
)

var statusNames = map[Status]string{
	Success:                "CL_SUCCESS",
	DeviceNotFound:         "CL_DEVICE_NOT_FOUND",
	CompileProgramFailure:  "CL_COMPILE_PROGRAM_FAILURE",
	MemObjectAllocFailure:  "CL_MEM_OBJECT_ALLOCATION_FAILURE",
	OutOfResources:         "CL_OUT_OF_RESOURCES",
	OutOfHostMemory:        "CL_OUT_OF_HOST_MEMORY",
	BuildProgramFailure:    "CL_BUILD_PROGRAM_FAILURE",
	InvalidValue:           "CL_INVALID_VALUE",
	InvalidDeviceType:      "CL_INVALID_DEVICE_TYPE",
	InvalidPlatform:        "CL_INVALID_PLATFORM",
	InvalidDevice:          "CL_INVALID_DEVICE",
	InvalidContext:         "CL_INVALID_CONTEXT",
	InvalidQueueProperties: "CL_INVALID_QUEUE_PROPERTIES",
	InvalidCommandQueue:    "CL_INVALID_COMMAND_QUEUE",
	InvalidMemObject:       "CL_INVALID_MEM_OBJECT",
	InvalidBinary:          "CL_INVALID_BINARY",
	InvalidBuildOptions:    "CL_INVALID_BUILD_OPTIONS",
	InvalidProgram:         "CL_INVALID_PROGRAM",
	InvalidProgramExec:     "CL_INVALID_PROGRAM_EXECUTABLE",
	InvalidKernelName:      "CL_INVALID_KERNEL_NAME",
	InvalidKernel:          "CL_INVALID_KERNEL",
	InvalidArgIndex:        "CL_INVALID_ARG_INDEX",
	InvalidArgValue:        "CL_INVALID_ARG_VALUE",
	InvalidArgSize:         "CL_INVALID_ARG_SIZE",
	InvalidKernelArgs:      "CL_INVALID_KERNEL_ARGS",
	InvalidWorkDimension:   "CL_INVALID_WORK_DIMENSION",
	InvalidWorkGroupSize:   "CL_INVALID_WORK_GROUP_SIZE",
	InvalidWorkItemSize:    "CL_INVALID_WORK_ITEM_SIZE",
	InvalidEventWaitList:   "CL_INVALID_EVENT_WAIT_LIST",
	InvalidEvent:           "CL_INVALID_EVENT",
	InvalidOperation:       "CL_INVALID_OPERATION",
	InvalidBufferSize:      "CL_INVALID_BUFFER_SIZE",
	InvalidSampler:         "CL_INVALID_SAMPLER",
}

// String returns the CL constant name for the status.
func (s Status) String() string {
	if n, ok := statusNames[s]; ok {
		return n
	}
	return fmt.Sprintf("CL_ERROR(%d)", int32(s))
}

// Error is the error type returned by every runtime entry point.
type Error struct {
	Status Status
	Op     string // the API function that failed, e.g. "clCreateBuffer"
	Detail string
}

func (e *Error) Error() string {
	if e.Detail == "" {
		return fmt.Sprintf("%s: %s", e.Op, e.Status)
	}
	return fmt.Sprintf("%s: %s: %s", e.Op, e.Status, e.Detail)
}

// ErrorCode exposes the error's structure for transports that must carry
// it across a process boundary (implements internal/ipc.ErrorCoder).
func (e *Error) ErrorCode() (op string, status int32, detail string) {
	return e.Op, int32(e.Status), e.Detail
}

// Errf constructs an *Error.
func Errf(op string, st Status, format string, args ...any) *Error {
	return &Error{Status: st, Op: op, Detail: fmt.Sprintf(format, args...)}
}

// StatusOf extracts the Status from an error returned by this package;
// it returns Success for nil and OutOfResources for foreign errors.
func StatusOf(err error) Status {
	if err == nil {
		return Success
	}
	if e, ok := err.(*Error); ok {
		return e.Status
	}
	return OutOfResources
}
