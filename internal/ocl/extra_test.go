package ocl

import (
	"testing"
	"testing/quick"

	"checl/internal/vtime"
)

// TestBufferWriteReadRoundtripProperty: arbitrary payloads at arbitrary
// in-range offsets survive the device round trip.
func TestBufferWriteReadRoundtripProperty(t *testing.T) {
	r, _ := newNV(t)
	ctx, q, _ := setupVadd(t, r)
	const size = 4096
	m, err := r.CreateBuffer(ctx, MemReadWrite, size, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := func(data []byte, off uint16) bool {
		if len(data) == 0 {
			return true
		}
		offset := int64(off) % (size - int64(len(data)%size))
		payload := data
		if int64(len(payload)) > size-offset {
			payload = payload[:size-offset]
		}
		if _, err := r.EnqueueWriteBuffer(q, m, true, offset, payload, nil); err != nil {
			return false
		}
		back, _, err := r.EnqueueReadBuffer(q, m, true, offset, int64(len(payload)), nil)
		if err != nil {
			return false
		}
		for i := range payload {
			if back[i] != payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQueueTimelineMonotoneProperty: successive commands on an in-order
// queue complete in submission order, whatever their sizes.
func TestQueueTimelineMonotoneProperty(t *testing.T) {
	r, _ := newNV(t)
	ctx, q, _ := setupVadd(t, r)
	m, err := r.CreateBuffer(ctx, MemReadWrite, 1<<20, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := func(sizes []uint16) bool {
		var prevEnd vtime.Time
		for _, s := range sizes {
			n := int64(s)%(1<<20) + 1
			ev, err := r.EnqueueWriteBuffer(q, m, false, 0, make([]byte, n), nil)
			if err != nil {
				return false
			}
			p, err := r.GetEventProfile(ev)
			if err != nil {
				return false
			}
			if p.End < prevEnd || p.Start > p.End {
				return false
			}
			prevEnd = p.End
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestCopyBuffer verifies device-side copies (contents and ordering).
func TestCopyBuffer(t *testing.T) {
	r, _ := newNV(t)
	ctx, q, _ := setupVadd(t, r)
	src, _ := r.CreateBuffer(ctx, MemReadWrite, 256, nil)
	dst, _ := r.CreateBuffer(ctx, MemReadWrite, 256, nil)
	payload := make([]byte, 256)
	for i := range payload {
		payload[i] = byte(255 - i)
	}
	if _, err := r.EnqueueWriteBuffer(q, src, true, 0, payload, nil); err != nil {
		t.Fatal(err)
	}
	ev, err := r.EnqueueCopyBuffer(q, src, dst, 16, 32, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.WaitForEvents([]Event{ev}); err != nil {
		t.Fatal(err)
	}
	back, _, err := r.EnqueueReadBuffer(q, dst, true, 32, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if back[i] != payload[16+i] {
			t.Fatalf("copy mismatch at %d", i)
		}
	}
	// Out-of-range copy fails.
	if _, err := r.EnqueueCopyBuffer(q, src, dst, 250, 0, 64, nil); StatusOf(err) != InvalidValue {
		t.Errorf("oob copy: %v", err)
	}
	// Unknown handles fail.
	if _, err := r.EnqueueCopyBuffer(q, Mem(1), dst, 0, 0, 8, nil); StatusOf(err) != InvalidMemObject {
		t.Errorf("bad src: %v", err)
	}
}

// TestEnqueueBarrierAndFlushValidate exercises the remaining queue ops.
func TestEnqueueBarrierAndFlushValidate(t *testing.T) {
	r, _ := newNV(t)
	_, q, _ := setupVadd(t, r)
	if err := r.EnqueueBarrier(q); err != nil {
		t.Fatal(err)
	}
	if err := r.Flush(q); err != nil {
		t.Fatal(err)
	}
	if err := r.EnqueueBarrier(CommandQueue(9)); StatusOf(err) != InvalidCommandQueue {
		t.Errorf("barrier on bad queue: %v", err)
	}
	if err := r.Flush(CommandQueue(9)); StatusOf(err) != InvalidCommandQueue {
		t.Errorf("flush on bad queue: %v", err)
	}
	if err := r.Finish(CommandQueue(9)); StatusOf(err) != InvalidCommandQueue {
		t.Errorf("finish on bad queue: %v", err)
	}
}

// TestEventRefcounting covers retain/release and the empty wait list.
func TestEventRefcounting(t *testing.T) {
	r, _ := newNV(t)
	_, q, _ := setupVadd(t, r)
	ev, err := r.EnqueueMarker(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RetainEvent(ev); err != nil {
		t.Fatal(err)
	}
	if err := r.ReleaseEvent(ev); err != nil {
		t.Fatal(err)
	}
	if err := r.ReleaseEvent(ev); err != nil {
		t.Fatal(err)
	}
	if err := r.ReleaseEvent(ev); StatusOf(err) != InvalidEvent {
		t.Errorf("released event: %v", err)
	}
	if err := r.WaitForEvents(nil); StatusOf(err) != InvalidValue {
		t.Errorf("empty wait list: %v", err)
	}
}

// TestContextQueueValidation covers remaining create error paths.
func TestContextQueueValidation(t *testing.T) {
	r, _ := newNV(t)
	plats, _ := r.GetPlatformIDs()
	devs, _ := r.GetDeviceIDs(plats[0], DeviceTypeAll)
	if _, err := r.CreateContext(nil); StatusOf(err) != InvalidValue {
		t.Errorf("empty devices: %v", err)
	}
	if _, err := r.CreateContext([]DeviceID{DeviceID(777)}); StatusOf(err) != InvalidDevice {
		t.Errorf("bad device: %v", err)
	}
	ctx, _ := r.CreateContext(devs)
	if _, err := r.CreateCommandQueue(Context(5), devs[0], 0); StatusOf(err) != InvalidContext {
		t.Errorf("bad ctx: %v", err)
	}
	if _, err := r.CreateCommandQueue(ctx, DeviceID(777), 0); StatusOf(err) != InvalidDevice {
		t.Errorf("queue on foreign device: %v", err)
	}
	// Retain/release of contexts and queues to zero.
	if err := r.RetainContext(ctx); err != nil {
		t.Fatal(err)
	}
	if err := r.ReleaseContext(ctx); err != nil {
		t.Fatal(err)
	}
	if err := r.ReleaseContext(ctx); err != nil {
		t.Fatal(err)
	}
	if err := r.ReleaseContext(ctx); StatusOf(err) != InvalidContext {
		t.Errorf("released ctx: %v", err)
	}
}

// TestGetPlatformInfoValues sanity-checks the vendor identity strings the
// CheCL vendor-selection logic matches on.
func TestGetPlatformInfoValues(t *testing.T) {
	amd, _ := newAMD(t)
	plats, _ := amd.GetPlatformIDs()
	info, err := amd.GetPlatformInfo(plats[0])
	if err != nil {
		t.Fatal(err)
	}
	if info.Vendor != "Advanced Micro Devices, Inc." || info.Profile != "FULL_PROFILE" {
		t.Errorf("info = %+v", info)
	}
	if _, err := amd.GetPlatformInfo(PlatformID(3)); StatusOf(err) != InvalidPlatform {
		t.Errorf("bad platform: %v", err)
	}
	if _, err := amd.GetDeviceIDs(PlatformID(3), DeviceTypeAll); StatusOf(err) != InvalidPlatform {
		t.Errorf("bad platform for devices: %v", err)
	}
	if _, err := amd.GetDeviceInfo(DeviceID(3)); StatusOf(err) != InvalidDevice {
		t.Errorf("bad device info: %v", err)
	}
}

// TestCreateBufferHostPtrValidation covers the host-data flag contracts.
func TestCreateBufferHostPtrValidation(t *testing.T) {
	r, _ := newNV(t)
	ctx, _, _ := setupVadd(t, r)
	if _, err := r.CreateBuffer(ctx, MemReadWrite|MemCopyHostPtr, 64, nil); StatusOf(err) != InvalidValue {
		t.Errorf("copy without host data: %v", err)
	}
	if _, err := r.CreateBuffer(ctx, MemReadWrite|MemUseHostPtr, 64, make([]byte, 8)); StatusOf(err) != InvalidValue {
		t.Errorf("short host data: %v", err)
	}
	if _, err := r.CreateBuffer(ctx, MemReadWrite, 0, nil); StatusOf(err) != InvalidBufferSize {
		t.Errorf("zero size: %v", err)
	}
	if _, err := r.CreateBuffer(Context(1), MemReadWrite, 64, nil); StatusOf(err) != InvalidContext {
		t.Errorf("bad context: %v", err)
	}
}
