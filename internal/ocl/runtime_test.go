package ocl

import (
	"encoding/binary"
	"math"
	"testing"

	"checl/internal/hw"
	"checl/internal/vtime"
)

const vaddSrc = `
__kernel void vadd(__global const float* a, __global const float* b,
                   __global float* c, uint n) {
    size_t i = get_global_id(0);
    if (i < n) c[i] = a[i] + b[i];
}`

func newNV(t *testing.T) (*Runtime, *vtime.Clock) {
	t.Helper()
	clock := vtime.NewClock()
	return NewRuntime(NVIDIA(), hw.TableISpec(), clock), clock
}

func newAMD(t *testing.T) (*Runtime, *vtime.Clock) {
	t.Helper()
	clock := vtime.NewClock()
	return NewRuntime(AMD(), hw.TableISpec(), clock), clock
}

// setup builds a ready-to-launch vadd kernel on the first device.
func setupVadd(t *testing.T, r *Runtime) (Context, CommandQueue, Kernel) {
	t.Helper()
	plats, err := r.GetPlatformIDs()
	if err != nil {
		t.Fatal(err)
	}
	devs, err := r.GetDeviceIDs(plats[0], DeviceTypeAll)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := r.CreateContext(devs)
	if err != nil {
		t.Fatal(err)
	}
	q, err := r.CreateCommandQueue(ctx, devs[0], QueueProfilingEnable)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := r.CreateProgramWithSource(ctx, vaddSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.BuildProgram(prog, ""); err != nil {
		t.Fatal(err)
	}
	k, err := r.CreateKernel(prog, "vadd")
	if err != nil {
		t.Fatal(err)
	}
	return ctx, q, k
}

func handleBytes[T ~uint64](h T) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(h))
	return b
}

func u32bytes(v uint32) []byte {
	b := make([]byte, 4)
	binary.LittleEndian.PutUint32(b, v)
	return b
}

func TestPlatformAndDeviceEnumeration(t *testing.T) {
	nv, _ := newNV(t)
	amd, _ := newAMD(t)

	np, _ := nv.GetPlatformIDs()
	info, err := nv.GetPlatformInfo(np[0])
	if err != nil || info.Vendor != "NVIDIA Corporation" {
		t.Errorf("NVIDIA platform info = %+v, %v", info, err)
	}
	if _, err := nv.GetDeviceIDs(np[0], DeviceTypeCPU); err == nil {
		t.Error("NVIDIA OpenCL must not expose a CPU device (paper §IV-C)")
	}
	gpus, err := nv.GetDeviceIDs(np[0], DeviceTypeGPU)
	if err != nil || len(gpus) != 1 {
		t.Fatalf("NVIDIA GPUs = %v, %v", gpus, err)
	}
	di, _ := nv.GetDeviceInfo(gpus[0])
	if di.Name != "Tesla C1060" || di.Type != hw.DeviceGPU {
		t.Errorf("device info = %+v", di)
	}

	ap, _ := amd.GetPlatformIDs()
	all, err := amd.GetDeviceIDs(ap[0], DeviceTypeAll)
	if err != nil || len(all) != 2 {
		t.Fatalf("AMD devices = %v, %v", all, err)
	}
	cpus, err := amd.GetDeviceIDs(ap[0], DeviceTypeCPU)
	if err != nil || len(cpus) != 1 {
		t.Fatalf("AMD CPUs = %v, %v", cpus, err)
	}
	ci, _ := amd.GetDeviceInfo(cpus[0])
	if ci.Type != hw.DeviceCPU {
		t.Errorf("AMD CPU device info = %+v", ci)
	}
}

func TestHandleValuesDifferAcrossRuntimes(t *testing.T) {
	// A recreated object (new proxy, new runtime) must get a different
	// handle value — the property that forces CheCL handle rebinding.
	r1, _ := newNV(t)
	r2, _ := newNV(t)
	p1, _ := r1.GetPlatformIDs()
	p2, _ := r2.GetPlatformIDs()
	if p1[0] == p2[0] {
		t.Error("two runtime instances returned identical platform handles")
	}
	d1, _ := r1.GetDeviceIDs(p1[0], DeviceTypeAll)
	c1a, _ := r1.CreateContext(d1)
	d2, _ := r2.GetDeviceIDs(p2[0], DeviceTypeAll)
	c2a, _ := r2.CreateContext(d2)
	if c1a == c2a {
		t.Error("contexts in different runtimes share a handle value")
	}
}

func TestBufferLifecycle(t *testing.T) {
	r, _ := newNV(t)
	ctx, q, _ := setupVadd(t, r)

	data := make([]byte, 1024)
	for i := range data {
		data[i] = byte(i)
	}
	m, err := r.CreateBuffer(ctx, MemReadWrite|MemCopyHostPtr, 1024, data)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := r.EnqueueReadBuffer(q, m, true, 0, 1024, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != byte(i) {
			t.Fatalf("COPY_HOST_PTR contents wrong at %d", i)
		}
	}
	// Partial write + read.
	if _, err := r.EnqueueWriteBuffer(q, m, true, 100, []byte{9, 9, 9}, nil); err != nil {
		t.Fatal(err)
	}
	got, _, _ = r.EnqueueReadBuffer(q, m, true, 100, 3, nil)
	if got[0] != 9 || got[2] != 9 {
		t.Error("partial write not visible")
	}
	// Out-of-range accesses.
	if _, err := r.EnqueueWriteBuffer(q, m, true, 1020, []byte{1, 2, 3, 4, 5}, nil); err == nil {
		t.Error("overflowing write must fail")
	}
	if _, _, err := r.EnqueueReadBuffer(q, m, true, -1, 4, nil); err == nil {
		t.Error("negative offset read must fail")
	}
	// Release frees device memory accounting.
	if err := r.RetainMemObject(m); err != nil {
		t.Fatal(err)
	}
	if err := r.ReleaseMemObject(m); err != nil {
		t.Fatal(err)
	}
	if err := r.ReleaseMemObject(m); err != nil {
		t.Fatal(err)
	}
	if err := r.ReleaseMemObject(m); err == nil {
		t.Error("double release of freed object must fail")
	}
}

func TestBufferAllocationFailure(t *testing.T) {
	// The HD5870 has 1 GB: a context on it must refuse a 2 GB buffer
	// (this is what shrinks oclFDTD3d problems on the AMD GPU).
	r, _ := newAMD(t)
	plats, _ := r.GetPlatformIDs()
	gpus, _ := r.GetDeviceIDs(plats[0], DeviceTypeGPU)
	ctx, _ := r.CreateContext(gpus)
	_, err := r.CreateBuffer(ctx, MemReadWrite, 2<<30, nil)
	if StatusOf(err) != MemObjectAllocFailure {
		t.Errorf("err = %v, want CL_MEM_OBJECT_ALLOCATION_FAILURE", err)
	}
	// Freeing returns capacity.
	m1, err := r.CreateBuffer(ctx, MemReadWrite, 600<<20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.CreateBuffer(ctx, MemReadWrite, 600<<20, nil); err == nil {
		t.Fatal("second 600MB allocation should exceed 1GB")
	}
	if err := r.ReleaseMemObject(m1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.CreateBuffer(ctx, MemReadWrite, 600<<20, nil); err != nil {
		t.Errorf("allocation after release failed: %v", err)
	}
}

func TestKernelExecution(t *testing.T) {
	r, clock := newNV(t)
	ctx, q, k := setupVadd(t, r)

	n := 256
	mkData := func(f func(int) float32) []byte {
		b := make([]byte, 4*n)
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(b[4*i:], math.Float32bits(f(i)))
		}
		return b
	}
	a, _ := r.CreateBuffer(ctx, MemReadOnly|MemCopyHostPtr, int64(4*n), mkData(func(i int) float32 { return float32(i) }))
	b, _ := r.CreateBuffer(ctx, MemReadOnly|MemCopyHostPtr, int64(4*n), mkData(func(i int) float32 { return 10 }))
	c, _ := r.CreateBuffer(ctx, MemWriteOnly, int64(4*n), nil)

	if err := r.SetKernelArg(k, 0, 8, handleBytes(a)); err != nil {
		t.Fatal(err)
	}
	if err := r.SetKernelArg(k, 1, 8, handleBytes(b)); err != nil {
		t.Fatal(err)
	}
	if err := r.SetKernelArg(k, 2, 8, handleBytes(c)); err != nil {
		t.Fatal(err)
	}
	if err := r.SetKernelArg(k, 3, 4, u32bytes(uint32(n))); err != nil {
		t.Fatal(err)
	}

	before := clock.Now()
	ev, err := r.EnqueueNDRangeKernel(q, k, 1, [3]int{}, [3]int{n}, [3]int{64}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Enqueue is asynchronous: host time must not jump past the kernel.
	if err := r.Finish(q); err != nil {
		t.Fatal(err)
	}
	after := clock.Now()
	if !(after > before) {
		t.Error("Finish did not advance the clock past kernel execution")
	}
	prof, err := r.GetEventProfile(ev)
	if err != nil {
		t.Fatal(err)
	}
	if !(prof.End > prof.Start) || prof.Start < prof.Queued {
		t.Errorf("profile not monotone: %+v", prof)
	}

	out, _, err := r.EnqueueReadBuffer(q, c, true, 0, int64(4*n), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		got := math.Float32frombits(binary.LittleEndian.Uint32(out[4*i:]))
		if got != float32(i)+10 {
			t.Fatalf("c[%d] = %v, want %v", i, got, float32(i)+10)
		}
	}
}

func TestKernelArgValidation(t *testing.T) {
	r, _ := newNV(t)
	ctx, q, k := setupVadd(t, r)
	a, _ := r.CreateBuffer(ctx, MemReadWrite, 64, nil)

	if err := r.SetKernelArg(k, 9, 8, handleBytes(a)); StatusOf(err) != InvalidArgIndex {
		t.Errorf("bad index: %v", err)
	}
	if err := r.SetKernelArg(k, 3, 4, nil); StatusOf(err) != InvalidArgValue {
		t.Errorf("nil scalar: %v", err)
	}
	if err := r.SetKernelArg(k, 3, 8, u32bytes(1)); StatusOf(err) != InvalidArgSize {
		t.Errorf("size mismatch: %v", err)
	}
	// Launch with unset args.
	if _, err := r.EnqueueNDRangeKernel(q, k, 1, [3]int{}, [3]int{64}, [3]int{64}, nil); StatusOf(err) != InvalidKernelArgs {
		t.Errorf("unset args: %v", err)
	}
	// Launch with a stale mem handle.
	r.SetKernelArg(k, 0, 8, handleBytes(a))
	r.SetKernelArg(k, 1, 8, handleBytes(a))
	r.SetKernelArg(k, 2, 8, handleBytes(Mem(0xdead)))
	r.SetKernelArg(k, 3, 4, u32bytes(4))
	if _, err := r.EnqueueNDRangeKernel(q, k, 1, [3]int{}, [3]int{16}, [3]int{16}, nil); StatusOf(err) != InvalidMemObject {
		t.Errorf("stale handle: %v", err)
	}
}

func TestWorkGroupLimits(t *testing.T) {
	// 512-wide groups fit the Tesla C1060 but not the Radeon HD5870 —
	// the oclSortingNetworks portability failure from §IV-A.
	run := func(r *Runtime, devMask DeviceTypeMask) error {
		plats, _ := r.GetPlatformIDs()
		devs, err := r.GetDeviceIDs(plats[0], devMask)
		if err != nil {
			return err
		}
		ctx, _ := r.CreateContext(devs)
		q, _ := r.CreateCommandQueue(ctx, devs[0], 0)
		prog, _ := r.CreateProgramWithSource(ctx, vaddSrc)
		if err := r.BuildProgram(prog, ""); err != nil {
			return err
		}
		k, _ := r.CreateKernel(prog, "vadd")
		a, _ := r.CreateBuffer(ctx, MemReadWrite, 4*1024, nil)
		r.SetKernelArg(k, 0, 8, handleBytes(a))
		r.SetKernelArg(k, 1, 8, handleBytes(a))
		r.SetKernelArg(k, 2, 8, handleBytes(a))
		r.SetKernelArg(k, 3, 4, u32bytes(1024))
		_, err = r.EnqueueNDRangeKernel(q, k, 1, [3]int{}, [3]int{1024}, [3]int{512}, nil)
		return err
	}
	nv, _ := newNV(t)
	if err := run(nv, DeviceTypeGPU); err != nil {
		t.Errorf("512-wide group should work on Tesla C1060: %v", err)
	}
	amd, _ := newAMD(t)
	if err := run(amd, DeviceTypeGPU); StatusOf(err) != InvalidWorkGroupSize {
		t.Errorf("512-wide group on HD5870: got %v, want CL_INVALID_WORK_GROUP_SIZE", err)
	}
	amd2, _ := newAMD(t)
	if err := run(amd2, DeviceTypeCPU); err != nil {
		t.Errorf("512-wide group should work on the CPU device: %v", err)
	}
}

func TestProgramBuildFailure(t *testing.T) {
	r, _ := newNV(t)
	ctx, _, _ := setupVadd(t, r)
	prog, err := r.CreateProgramWithSource(ctx, "__kernel void broken( {")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.BuildProgram(prog, ""); StatusOf(err) != BuildProgramFailure {
		t.Fatalf("build err = %v", err)
	}
	bi, _ := r.GetProgramBuildInfo(prog, 0)
	if bi.Success || bi.Log == "" {
		t.Errorf("build info = %+v, want failure with log", bi)
	}
	if _, err := r.CreateKernel(prog, "broken"); StatusOf(err) != InvalidProgramExec {
		t.Errorf("CreateKernel on unbuilt program: %v", err)
	}
}

func TestProgramBinaryRoundtrip(t *testing.T) {
	nv1, _ := newNV(t)
	ctx, _, _ := setupVadd(t, nv1)
	prog, _ := nv1.CreateProgramWithSource(ctx, vaddSrc)
	if err := nv1.BuildProgram(prog, ""); err != nil {
		t.Fatal(err)
	}
	bin, err := nv1.GetProgramBinary(prog)
	if err != nil {
		t.Fatal(err)
	}

	// Same vendor: loads and builds.
	nv2, _ := newNV(t)
	p2, _ := nv2.GetPlatformIDs()
	d2, _ := nv2.GetDeviceIDs(p2[0], DeviceTypeAll)
	ctx2, _ := nv2.CreateContext(d2)
	bp, err := nv2.CreateProgramWithBinary(ctx2, d2[0], bin)
	if err != nil {
		t.Fatal(err)
	}
	if err := nv2.BuildProgram(bp, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := nv2.CreateKernel(bp, "vadd"); err != nil {
		t.Errorf("kernel from binary: %v", err)
	}

	// Different vendor: rejected (why CheCL deprecates binaries, §III-D).
	amd, _ := newAMD(t)
	pa, _ := amd.GetPlatformIDs()
	da, _ := amd.GetDeviceIDs(pa[0], DeviceTypeAll)
	ctxa, _ := amd.CreateContext(da)
	if _, err := amd.CreateProgramWithBinary(ctxa, da[0], bin); StatusOf(err) != InvalidBinary {
		t.Errorf("cross-vendor binary: %v, want CL_INVALID_BINARY", err)
	}
}

func TestCompileTimeAsymmetry(t *testing.T) {
	// Building the same program must take longer under the AMD compiler
	// model than the NVIDIA one (Fig. 7).
	build := func(r *Runtime, clock *vtime.Clock) vtime.Duration {
		plats, _ := r.GetPlatformIDs()
		devs, _ := r.GetDeviceIDs(plats[0], DeviceTypeAll)
		ctx, _ := r.CreateContext(devs)
		prog, _ := r.CreateProgramWithSource(ctx, vaddSrc)
		start := clock.Now()
		if err := r.BuildProgram(prog, ""); err != nil {
			t.Fatal(err)
		}
		return clock.Now().Sub(start)
	}
	nv, nvc := newNV(t)
	amd, amdc := newAMD(t)
	tn := build(nv, nvc)
	ta := build(amd, amdc)
	if !(ta > tn) {
		t.Errorf("AMD build %v should exceed NVIDIA build %v", ta, tn)
	}
}

func TestMarkerAndQueueTail(t *testing.T) {
	r, clock := newNV(t)
	ctx, q, k := setupVadd(t, r)
	n := 1 << 16
	a, _ := r.CreateBuffer(ctx, MemReadWrite, int64(4*n), nil)
	r.SetKernelArg(k, 0, 8, handleBytes(a))
	r.SetKernelArg(k, 1, 8, handleBytes(a))
	r.SetKernelArg(k, 2, 8, handleBytes(a))
	r.SetKernelArg(k, 3, 4, u32bytes(uint32(n)))
	if _, err := r.EnqueueNDRangeKernel(q, k, 1, [3]int{}, [3]int{n}, [3]int{256}, nil); err != nil {
		t.Fatal(err)
	}
	tail, err := r.QueueTail(q)
	if err != nil {
		t.Fatal(err)
	}
	if !(tail > clock.Now()) {
		t.Error("queue should have pending work after async enqueue")
	}
	// A marker completes at the tail without blocking the host.
	ev, err := r.EnqueueMarker(q)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := r.GetEventProfile(ev)
	if p.End != tail {
		t.Errorf("marker completes at %v, want queue tail %v", p.End, tail)
	}
	if clock.Now() >= tail {
		t.Error("marker must not block the host")
	}
	// WaitForEvents on the marker synchronises.
	if err := r.WaitForEvents([]Event{ev}); err != nil {
		t.Fatal(err)
	}
	if clock.Now() != tail {
		t.Errorf("WaitForEvents advanced to %v, want %v", clock.Now(), tail)
	}
}

func TestUseHostPtrCoherenceAndCost(t *testing.T) {
	r, clock := newNV(t)
	ctx, q, k := setupVadd(t, r)
	n := 1 << 14
	host := make([]byte, 4*n)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(host[4*i:], math.Float32bits(1))
	}
	m, err := r.CreateBuffer(ctx, MemReadWrite|MemUseHostPtr, int64(4*n), host)
	if err != nil {
		t.Fatal(err)
	}
	plain, _ := r.CreateBuffer(ctx, MemReadWrite|MemCopyHostPtr, int64(4*n), host)
	out, _ := r.CreateBuffer(ctx, MemReadWrite, int64(4*n), nil)

	// Mutate the host region directly after creation; the kernel must see
	// the updated contents (the cached copy is re-sent on every launch).
	binary.LittleEndian.PutUint32(host[0:], math.Float32bits(5))

	r.SetKernelArg(k, 0, 8, handleBytes(m))
	r.SetKernelArg(k, 1, 8, handleBytes(plain))
	r.SetKernelArg(k, 2, 8, handleBytes(out))
	r.SetKernelArg(k, 3, 4, u32bytes(uint32(n)))
	before := clock.Now()
	if _, err := r.EnqueueNDRangeKernel(q, k, 1, [3]int{}, [3]int{n}, [3]int{64}, nil); err != nil {
		t.Fatal(err)
	}
	r.Finish(q)
	withHostPtr := clock.Now().Sub(before)
	got, _, _ := r.EnqueueReadBuffer(q, out, true, 0, 4, nil)
	if v := math.Float32frombits(binary.LittleEndian.Uint32(got)); v != 6 {
		t.Errorf("kernel saw stale USE_HOST_PTR data: out[0] = %v, want 6", v)
	}

	// The same launch using only plain buffers must be faster.
	r.SetKernelArg(k, 0, 8, handleBytes(plain))
	before = clock.Now()
	if _, err := r.EnqueueNDRangeKernel(q, k, 1, [3]int{}, [3]int{n}, [3]int{64}, nil); err != nil {
		t.Fatal(err)
	}
	r.Finish(q)
	without := clock.Now().Sub(before)
	if !(withHostPtr > without) {
		t.Errorf("USE_HOST_PTR launch (%v) should cost more than plain launch (%v)", withHostPtr, without)
	}
}

func TestDefaultLocalSize(t *testing.T) {
	r, _ := newNV(t)
	ctx, q, k := setupVadd(t, r)
	a, _ := r.CreateBuffer(ctx, MemReadWrite, 4*1000, nil)
	r.SetKernelArg(k, 0, 8, handleBytes(a))
	r.SetKernelArg(k, 1, 8, handleBytes(a))
	r.SetKernelArg(k, 2, 8, handleBytes(a))
	r.SetKernelArg(k, 3, 4, u32bytes(1000))
	// NULL local size: implementation chooses one that divides 1000.
	if _, err := r.EnqueueNDRangeKernel(q, k, 1, [3]int{}, [3]int{1000}, [3]int{}, nil); err != nil {
		t.Fatalf("default local size launch failed: %v", err)
	}
}

func TestEventWaitListOrdering(t *testing.T) {
	r, _ := newNV(t)
	ctx, q, _ := setupVadd(t, r)
	m, _ := r.CreateBuffer(ctx, MemReadWrite, 1<<20, nil)
	ev1, err := r.EnqueueWriteBuffer(q, m, false, 0, make([]byte, 1<<20), nil)
	if err != nil {
		t.Fatal(err)
	}
	// A second queue command waiting on ev1 must start at or after its end.
	q2, _ := r.CreateCommandQueue(ctx, mustFirstDevice(t, r), 0)
	ev2, err := r.EnqueueWriteBuffer(q2, m, false, 0, make([]byte, 4), []Event{ev1})
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := r.GetEventProfile(ev1)
	p2, _ := r.GetEventProfile(ev2)
	if p2.Start < p1.End {
		t.Errorf("dependent command started %v before dependency end %v", p2.Start, p1.End)
	}
	if err := r.WaitForEvents([]Event{Event(0xbad)}); StatusOf(err) != InvalidEventWaitList {
		t.Errorf("bad wait list: %v", err)
	}
}

func mustFirstDevice(t *testing.T, r *Runtime) DeviceID {
	t.Helper()
	p, _ := r.GetPlatformIDs()
	d, err := r.GetDeviceIDs(p[0], DeviceTypeAll)
	if err != nil {
		t.Fatal(err)
	}
	return d[0]
}

func TestSamplerLifecycle(t *testing.T) {
	r, _ := newNV(t)
	ctx, _, _ := setupVadd(t, r)
	s, err := r.CreateSampler(ctx, true, AddressClamp, FilterLinear)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RetainSampler(s); err != nil {
		t.Fatal(err)
	}
	if err := r.ReleaseSampler(s); err != nil {
		t.Fatal(err)
	}
	if err := r.ReleaseSampler(s); err != nil {
		t.Fatal(err)
	}
	if err := r.ReleaseSampler(s); StatusOf(err) != InvalidSampler {
		t.Errorf("released sampler: %v", err)
	}
}

func TestStatusStringsAndErrors(t *testing.T) {
	if Success.String() != "CL_SUCCESS" {
		t.Error("Success name wrong")
	}
	if InvalidContext.String() != "CL_INVALID_CONTEXT" {
		t.Error("InvalidContext name wrong")
	}
	e := Errf("clFoo", InvalidValue, "because %d", 7)
	if e.Error() != "clFoo: CL_INVALID_VALUE: because 7" {
		t.Errorf("Error() = %q", e.Error())
	}
	if StatusOf(nil) != Success {
		t.Error("StatusOf(nil)")
	}
}

func TestTransferTimingAsymmetry(t *testing.T) {
	// PCIe HtoD (5.35 GB/s) vs DtoH (4.87 GB/s): reading back the same
	// payload must take longer than writing it.
	r, clock := newNV(t)
	ctx, q, _ := setupVadd(t, r)
	const sz = 32 << 20
	m, _ := r.CreateBuffer(ctx, MemReadWrite, sz, nil)
	t0 := clock.Now()
	if _, err := r.EnqueueWriteBuffer(q, m, true, 0, make([]byte, sz), nil); err != nil {
		t.Fatal(err)
	}
	htod := clock.Now().Sub(t0)
	t0 = clock.Now()
	if _, _, err := r.EnqueueReadBuffer(q, m, true, 0, sz, nil); err != nil {
		t.Fatal(err)
	}
	dtoh := clock.Now().Sub(t0)
	if !(dtoh > htod) {
		t.Errorf("DtoH (%v) should be slower than HtoD (%v)", dtoh, htod)
	}
	// 32 MB at 5.35 GB/s is about 6.3 ms.
	if htod < 5*vtime.Millisecond || htod > 8*vtime.Millisecond {
		t.Errorf("HtoD of 32MB = %v, want ~6.3ms", htod)
	}
}
