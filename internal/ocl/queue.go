package ocl

import (
	"encoding/binary"

	"checl/internal/clc"
	"checl/internal/hw"
	"checl/internal/vtime"
)

// hostToDevBW returns the bandwidth for host->device transfers on the
// queue's device: PCIe for GPUs, host memcpy for CPU devices.
func (r *Runtime) hostToDevBW(d *device) hw.Bandwidth {
	if d.model.Type == hw.DeviceCPU {
		return r.spec.Inter.Memcpy
	}
	return r.spec.Inter.PCIeHtoD
}

func (r *Runtime) devToHostBW(d *device) hw.Bandwidth {
	if d.model.Type == hw.DeviceCPU {
		return r.spec.Inter.Memcpy
	}
	return r.spec.Inter.PCIeDtoH
}

// waitsEnd computes the completion horizon of an event wait list. Caller
// holds r.mu.
func (r *Runtime) waitsEnd(op string, waits []Event) (vtime.Time, error) {
	var horizon vtime.Time
	for _, e := range waits {
		ev, ok := r.events[e]
		if !ok {
			return 0, Errf(op, InvalidEventWaitList, "unknown event %#x", uint64(e))
		}
		horizon = vtime.Max(horizon, ev.profile.End)
	}
	return horizon, nil
}

// newEvent mints a completed-at-end event on q. Caller holds r.mu.
func (r *Runtime) newEvent(q CommandQueue, kind string, queued, start, end vtime.Time) *eventObj {
	ev := &eventObj{
		id:    Event(r.newHandle(tagEvent)),
		refs:  1,
		queue: q,
		kind:  kind,
		profile: EventProfile{
			Queued: queued,
			Submit: queued,
			Start:  start,
			End:    end,
		},
	}
	r.events[ev.id] = ev
	return ev
}

// schedule computes an in-order command's start/end and advances the
// queue tail. Caller holds r.mu.
func (r *Runtime) schedule(q *queueObj, horizon vtime.Time, dur vtime.Duration) (start, end vtime.Time) {
	now := r.clock.Now()
	start = vtime.Max(vtime.Max(now, q.tail), horizon)
	end = start.Add(dur)
	q.tail = end
	return start, end
}

// EnqueueWriteBuffer implements clEnqueueWriteBuffer.
func (r *Runtime) EnqueueWriteBuffer(qid CommandQueue, mid Mem, blocking bool, offset int64, data []byte, waits []Event) (Event, error) {
	r.mu.Lock()
	q, ok := r.queues[qid]
	if !ok {
		r.mu.Unlock()
		return 0, Errf("clEnqueueWriteBuffer", InvalidCommandQueue, "unknown queue %#x", uint64(qid))
	}
	b, ok := r.buffers[mid]
	if !ok {
		r.mu.Unlock()
		return 0, Errf("clEnqueueWriteBuffer", InvalidMemObject, "unknown mem object %#x", uint64(mid))
	}
	if offset < 0 || offset+int64(len(data)) > b.size {
		r.mu.Unlock()
		return 0, Errf("clEnqueueWriteBuffer", InvalidValue,
			"write of %d bytes at offset %d exceeds buffer size %d", len(data), offset, b.size)
	}
	horizon, err := r.waitsEnd("clEnqueueWriteBuffer", waits)
	if err != nil {
		r.mu.Unlock()
		return 0, err
	}
	dev := r.devices[q.dev]
	dur := r.hostToDevBW(dev).Transfer(int64(len(data)))
	queued := r.clock.Now()
	start, end := r.schedule(q, horizon, dur)
	copy(b.data[offset:], data)
	ev := r.newEvent(qid, "write", queued, start, end)
	r.mu.Unlock()
	if blocking {
		r.clock.AdvanceTo(end)
	}
	return ev.id, nil
}

// EnqueueReadBuffer implements clEnqueueReadBuffer. The read data is
// returned (in real OpenCL it lands in a caller-supplied pointer).
func (r *Runtime) EnqueueReadBuffer(qid CommandQueue, mid Mem, blocking bool, offset, size int64, waits []Event) ([]byte, Event, error) {
	return r.EnqueueReadBufferInto(qid, mid, blocking, offset, size, waits, nil)
}

// EnqueueReadBufferInto is EnqueueReadBuffer with a caller-owned
// destination — the closest Go analogue of the real call's void* out
// pointer. When buf's capacity covers size the read lands in it and the
// returned slice aliases buf; otherwise a fresh slice is allocated.
func (r *Runtime) EnqueueReadBufferInto(qid CommandQueue, mid Mem, blocking bool, offset, size int64, waits []Event, buf []byte) ([]byte, Event, error) {
	r.mu.Lock()
	q, ok := r.queues[qid]
	if !ok {
		r.mu.Unlock()
		return nil, 0, Errf("clEnqueueReadBuffer", InvalidCommandQueue, "unknown queue %#x", uint64(qid))
	}
	b, ok := r.buffers[mid]
	if !ok {
		r.mu.Unlock()
		return nil, 0, Errf("clEnqueueReadBuffer", InvalidMemObject, "unknown mem object %#x", uint64(mid))
	}
	if offset < 0 || size < 0 || offset+size > b.size {
		r.mu.Unlock()
		return nil, 0, Errf("clEnqueueReadBuffer", InvalidValue,
			"read of %d bytes at offset %d exceeds buffer size %d", size, offset, b.size)
	}
	horizon, err := r.waitsEnd("clEnqueueReadBuffer", waits)
	if err != nil {
		r.mu.Unlock()
		return nil, 0, err
	}
	dev := r.devices[q.dev]
	dur := r.devToHostBW(dev).Transfer(size)
	queued := r.clock.Now()
	start, end := r.schedule(q, horizon, dur)
	out := buf
	if int64(cap(out)) >= size {
		out = out[:size]
	} else {
		out = make([]byte, size)
	}
	copy(out, b.data[offset:offset+size])
	ev := r.newEvent(qid, "read", queued, start, end)
	r.mu.Unlock()
	if blocking {
		r.clock.AdvanceTo(end)
	}
	return out, ev.id, nil
}

// EnqueueCopyBuffer implements clEnqueueCopyBuffer (device-internal copy).
func (r *Runtime) EnqueueCopyBuffer(qid CommandQueue, src, dst Mem, srcOff, dstOff, size int64, waits []Event) (Event, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	q, ok := r.queues[qid]
	if !ok {
		return 0, Errf("clEnqueueCopyBuffer", InvalidCommandQueue, "unknown queue %#x", uint64(qid))
	}
	sb, ok := r.buffers[src]
	if !ok {
		return 0, Errf("clEnqueueCopyBuffer", InvalidMemObject, "unknown source %#x", uint64(src))
	}
	db, ok := r.buffers[dst]
	if !ok {
		return 0, Errf("clEnqueueCopyBuffer", InvalidMemObject, "unknown destination %#x", uint64(dst))
	}
	if srcOff < 0 || srcOff+size > sb.size || dstOff < 0 || dstOff+size > db.size {
		return 0, Errf("clEnqueueCopyBuffer", InvalidValue, "copy range out of bounds")
	}
	horizon, err := r.waitsEnd("clEnqueueCopyBuffer", waits)
	if err != nil {
		return 0, err
	}
	dev := r.devices[q.dev]
	dur := dev.model.MemBandwidth.Transfer(2 * size) // read + write on device memory
	queued := r.clock.Now()
	start, end := r.schedule(q, horizon, dur)
	copy(db.data[dstOff:dstOff+size], sb.data[srcOff:srcOff+size])
	ev := r.newEvent(qid, "copy", queued, start, end)
	return ev.id, nil
}

// defaultLocal picks a legal work-group geometry when the application
// passes a NULL local size, mirroring implementation-chosen sizes.
func defaultLocal(dims int, global [3]int, m hw.DeviceModel) [3]int {
	local := [3]int{1, 1, 1}
	limit := m.MaxWorkGroupSize
	if limit > m.MaxWorkItemSizes[0] {
		limit = m.MaxWorkItemSizes[0]
	}
	g := global[0]
	if g == 0 {
		g = 1
	}
	best := 1
	for c := 1; c <= limit && c <= g; c *= 2 {
		if g%c == 0 {
			best = c
		}
	}
	local[0] = best
	_ = dims
	return local
}

// EnqueueNDRangeKernel implements clEnqueueNDRangeKernel: the kernel is
// interpreted eagerly for functional results, and its dynamic operation
// profile is converted to virtual device time by the roofline model.
func (r *Runtime) EnqueueNDRangeKernel(qid CommandQueue, kid Kernel, dims int, offset, global, local [3]int, waits []Event) (Event, error) {
	r.mu.Lock()
	q, ok := r.queues[qid]
	if !ok {
		r.mu.Unlock()
		return 0, Errf("clEnqueueNDRangeKernel", InvalidCommandQueue, "unknown queue %#x", uint64(qid))
	}
	k, ok := r.kernels[kid]
	if !ok {
		r.mu.Unlock()
		return 0, Errf("clEnqueueNDRangeKernel", InvalidKernel, "unknown kernel %#x", uint64(kid))
	}
	prog, ok := r.programs[k.prog]
	if !ok || !prog.built {
		r.mu.Unlock()
		return 0, Errf("clEnqueueNDRangeKernel", InvalidProgramExec, "kernel's program not built")
	}
	dev := r.devices[q.dev]
	if dims < 1 || dims > 3 {
		r.mu.Unlock()
		return 0, Errf("clEnqueueNDRangeKernel", InvalidWorkDimension, "dims %d", dims)
	}
	if local == [3]int{} {
		local = defaultLocal(dims, global, dev.model)
	}
	if err := dev.model.FitsWorkGroup(local); err != nil {
		r.mu.Unlock()
		return 0, Errf("clEnqueueNDRangeKernel", InvalidWorkGroupSize, "%v", err)
	}

	// Translate argument slots to interpreter arguments. A mem-handle
	// argument's 8 bytes are the cl_mem handle value — the runtime (like
	// a real implementation) resolves it to device storage.
	args := make([]clc.KernelArg, len(k.args))
	var hostPtrBufs []*buffer
	var hostPtrBytes int64
	for i, slot := range k.args {
		if !slot.set {
			r.mu.Unlock()
			return 0, Errf("clEnqueueNDRangeKernel", InvalidKernelArgs,
				"argument %d (%s) of kernel %s not set", i, k.sig.Params[i].Name, k.name)
		}
		switch k.sig.Params[i].Kind {
		case clc.ParamMemHandle, clc.ParamImageHandle:
			if slot.size != 8 {
				r.mu.Unlock()
				return 0, Errf("clEnqueueNDRangeKernel", InvalidArgSize,
					"argument %d of kernel %s: handle argument must be 8 bytes", i, k.name)
			}
			h := Mem(binary.LittleEndian.Uint64(slot.bytes))
			b, ok := r.buffers[h]
			if !ok {
				r.mu.Unlock()
				return 0, Errf("clEnqueueNDRangeKernel", InvalidMemObject,
					"argument %d of kernel %s: %#x is not a mem object", i, k.name, uint64(h))
			}
			args[i] = clc.KernelArg{Mem: b.data}
			if b.useHostPtr {
				hostPtrBufs = append(hostPtrBufs, b)
				hostPtrBytes += b.size
			}
		case clc.ParamLocalSize:
			args[i] = clc.KernelArg{LocalSize: int(slot.size)}
		case clc.ParamSamplerHandle:
			h := Sampler(binary.LittleEndian.Uint64(slot.bytes))
			if _, ok := r.samplers[h]; !ok {
				r.mu.Unlock()
				return 0, Errf("clEnqueueNDRangeKernel", InvalidSampler,
					"argument %d of kernel %s: %#x is not a sampler", i, k.name, uint64(h))
			}
			args[i] = clc.KernelArg{Scalar: slot.bytes}
		default:
			args[i] = clc.KernelArg{Scalar: slot.bytes}
		}
	}
	horizon, err := r.waitsEnd("clEnqueueNDRangeKernel", waits)
	if err != nil {
		r.mu.Unlock()
		return 0, err
	}
	compiled := prog.compiled
	name := k.name
	queued := r.clock.Now()

	// CL_MEM_USE_HOST_PTR coherence (§III-D): the cached host copy is
	// sent to the device before the kernel and written back after it.
	for _, b := range hostPtrBufs {
		copy(b.data, b.hostPtr)
	}
	r.mu.Unlock()

	prof, execErr := compiled.Execute(name, clc.NDRange{Dims: dims, Offset: offset, Global: global, Local: local}, args, clc.ExecOptions{})
	if execErr != nil {
		return 0, Errf("clEnqueueNDRangeKernel", OutOfResources, "kernel execution failed: %v", execErr)
	}

	dur := dev.model.KernelTime(prof.Flops, prof.GlobalBytes)
	if hostPtrBytes > 0 && dev.model.Type != hw.DeviceCPU {
		dur += r.spec.Inter.PCIeHtoD.Transfer(hostPtrBytes)
		dur += r.spec.Inter.PCIeDtoH.Transfer(hostPtrBytes)
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	for _, b := range hostPtrBufs {
		copy(b.hostPtr, b.data)
	}
	q, ok = r.queues[qid]
	if !ok {
		return 0, Errf("clEnqueueNDRangeKernel", InvalidCommandQueue, "queue released during launch")
	}
	start, end := r.schedule(q, horizon, dur)
	ev := r.newEvent(qid, "ndrange:"+name, queued, start, end)
	return ev.id, nil
}

// EnqueueMarker implements clEnqueueMarker: it returns immediately with an
// event that completes when all previously enqueued commands complete.
// CheCL calls this to mint dummy events after restart (§III-C).
func (r *Runtime) EnqueueMarker(qid CommandQueue) (Event, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	q, ok := r.queues[qid]
	if !ok {
		return 0, Errf("clEnqueueMarker", InvalidCommandQueue, "unknown queue %#x", uint64(qid))
	}
	now := r.clock.Now()
	at := vtime.Max(now, q.tail)
	ev := r.newEvent(qid, "marker", now, at, at)
	return ev.id, nil
}

// EnqueueBarrier implements clEnqueueBarrier. Queues in this runtime are
// in-order, so the barrier is a semantic no-op that still validates its
// queue.
func (r *Runtime) EnqueueBarrier(qid CommandQueue) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.queues[qid]; !ok {
		return Errf("clEnqueueBarrier", InvalidCommandQueue, "unknown queue %#x", uint64(qid))
	}
	return nil
}

// Flush implements clFlush: all commands are already submitted in this
// runtime, so flushing only validates the queue.
func (r *Runtime) Flush(qid CommandQueue) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.queues[qid]; !ok {
		return Errf("clFlush", InvalidCommandQueue, "unknown queue %#x", uint64(qid))
	}
	return nil
}

// Finish implements clFinish: it blocks (advances the clock) until every
// command enqueued on the queue has completed.
func (r *Runtime) Finish(qid CommandQueue) error {
	r.mu.Lock()
	q, ok := r.queues[qid]
	if !ok {
		r.mu.Unlock()
		return Errf("clFinish", InvalidCommandQueue, "unknown queue %#x", uint64(qid))
	}
	tail := q.tail
	r.mu.Unlock()
	r.clock.AdvanceTo(tail)
	return nil
}

// WaitForEvents implements clWaitForEvents.
func (r *Runtime) WaitForEvents(events []Event) error {
	if len(events) == 0 {
		return Errf("clWaitForEvents", InvalidValue, "empty event list")
	}
	r.mu.Lock()
	horizon, err := r.waitsEnd("clWaitForEvents", events)
	r.mu.Unlock()
	if err != nil {
		return err
	}
	r.clock.AdvanceTo(horizon)
	return nil
}

// GetEventProfile implements clGetEventProfilingInfo.
func (r *Runtime) GetEventProfile(e Event) (EventProfile, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ev, ok := r.events[e]
	if !ok {
		return EventProfile{}, Errf("clGetEventProfilingInfo", InvalidEvent, "unknown event %#x", uint64(e))
	}
	return ev.profile, nil
}

// RetainEvent implements clRetainEvent.
func (r *Runtime) RetainEvent(e Event) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	ev, ok := r.events[e]
	if !ok {
		return Errf("clRetainEvent", InvalidEvent, "unknown event %#x", uint64(e))
	}
	ev.refs++
	return nil
}

// ReleaseEvent implements clReleaseEvent.
func (r *Runtime) ReleaseEvent(e Event) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	ev, ok := r.events[e]
	if !ok {
		return Errf("clReleaseEvent", InvalidEvent, "unknown event %#x", uint64(e))
	}
	ev.refs--
	if ev.refs <= 0 {
		delete(r.events, e)
	}
	return nil
}

// QueueTail reports the completion horizon of a queue without blocking —
// used by CheCL's delayed-checkpoint mode and by tests to measure the
// synchronisation cost a checkpoint would incur now.
func (r *Runtime) QueueTail(qid CommandQueue) (vtime.Time, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	q, ok := r.queues[qid]
	if !ok {
		return 0, Errf("QueueTail", InvalidCommandQueue, "unknown queue %#x", uint64(qid))
	}
	return q.tail, nil
}
