package cpr

import (
	"errors"
	"testing"

	"checl/internal/hw"
	"checl/internal/proc"
	"checl/internal/vtime"
)

func node() *proc.Node { return proc.NewNode("pc0", hw.TableISpec()) }

func TestBLCRCheckpointRestartRoundtrip(t *testing.T) {
	n := node()
	p := n.Spawn("app")
	p.SetRegion("heap", []byte{1, 2, 3, 4})
	p.SetRegion("data", make([]byte, 1<<20))

	st, err := BLCR{}.Checkpoint(p, n.LocalDisk, "app.ckpt")
	if err != nil {
		t.Fatal(err)
	}
	if st.Bytes < 1<<20 {
		t.Errorf("checkpoint bytes = %d, want >= 1 MiB", st.Bytes)
	}
	if st.Time <= 0 {
		t.Error("checkpoint write time not charged")
	}

	p.Kill()
	q, rst, err := BLCR{}.Restart(n, n.LocalDisk, "app.ckpt")
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != "app" || q.Region("heap")[2] != 3 || q.MemoryUsage() != 4+1<<20 {
		t.Error("restored image wrong")
	}
	if rst.Time <= 0 {
		t.Error("restart read time not charged")
	}
}

func TestBLCRRefusesDeviceMappedProcess(t *testing.T) {
	// The §II failure: an OpenCL process has devices mapped into its
	// address space, so the conventional CPR system cannot dump it.
	n := node()
	p := n.Spawn("opencl-app")
	p.MapDevice()
	_, err := BLCR{}.Checkpoint(p, n.LocalDisk, "x.ckpt")
	var dme *DeviceMappedError
	if !errors.As(err, &dme) {
		t.Fatalf("err = %v, want DeviceMappedError", err)
	}
	if dme.Backend != "blcr" {
		t.Errorf("backend = %q", dme.Backend)
	}
}

func TestBLCRIgnoresChildren(t *testing.T) {
	// BLCR checkpoints a single process: a device-mapped child (the API
	// proxy) does not block it. This is exactly why CheCL works with BLCR.
	n := node()
	app := n.Spawn("app")
	proxy := app.Fork("proxy")
	proxy.MapDevice()
	if _, err := (BLCR{}).Checkpoint(app, n.LocalDisk, "app.ckpt"); err != nil {
		t.Fatalf("BLCR should ignore children: %v", err)
	}
}

func TestDMTCPWalksProcessTree(t *testing.T) {
	// DMTCP checkpoints the tree by default, so a live API proxy makes it
	// fail (§V)...
	n := node()
	app := n.Spawn("app")
	proxy := app.Fork("proxy")
	proxy.MapDevice()
	_, err := DMTCP{}.Checkpoint(app, n.LocalDisk, "app.ckpt")
	var dme *DeviceMappedError
	if !errors.As(err, &dme) {
		t.Fatalf("err = %v, want DeviceMappedError", err)
	}
	// ...but works if the proxy is killed before the checkpoint.
	proxy.Kill()
	if _, err := (DMTCP{}).Checkpoint(app, n.LocalDisk, "app.ckpt"); err != nil {
		t.Fatalf("DMTCP after killing proxy: %v", err)
	}
	if _, _, err := (DMTCP{}).Restart(n, n.LocalDisk, "app.ckpt"); err != nil {
		t.Fatalf("DMTCP restart: %v", err)
	}
}

func TestCheckpointDeadProcess(t *testing.T) {
	n := node()
	p := n.Spawn("app")
	p.Kill()
	if _, err := (BLCR{}).Checkpoint(p, n.LocalDisk, "x"); err == nil {
		t.Error("checkpointing a dead process must fail")
	}
	if _, err := (DMTCP{}).Checkpoint(p, n.LocalDisk, "x"); err == nil {
		t.Error("dmtcp checkpointing a dead process must fail")
	}
}

func TestRestartErrors(t *testing.T) {
	n := node()
	if _, _, err := (BLCR{}).Restart(n, n.LocalDisk, "missing.ckpt"); err == nil {
		t.Error("restart from missing file must fail")
	}
	n.LocalDisk.WriteFile(n.Clock, "garbage.ckpt", []byte("not a checkpoint"))
	if _, _, err := (BLCR{}).Restart(n, n.LocalDisk, "garbage.ckpt"); err == nil {
		t.Error("restart from garbage must fail")
	}
}

func TestCheckpointTimeTracksStorageModel(t *testing.T) {
	// Writing the same image to the RAM disk must be much faster than to
	// the local disk — the property runtime processor selection exploits
	// (§IV-C).
	n := node()
	p := n.Spawn("app")
	p.SetRegion("data", make([]byte, 16<<20))
	stDisk, err := BLCR{}.Checkpoint(p, n.LocalDisk, "a.ckpt")
	if err != nil {
		t.Fatal(err)
	}
	stRAM, err := BLCR{}.Checkpoint(p, n.RAMDisk, "a.ckpt")
	if err != nil {
		t.Fatal(err)
	}
	if !(stRAM.Time < stDisk.Time/10) {
		t.Errorf("RAM-disk checkpoint (%v) should be >10x faster than disk (%v)", stRAM.Time, stDisk.Time)
	}
}

func TestReadImage(t *testing.T) {
	n := node()
	p := n.Spawn("app")
	p.SetRegion("heap", []byte{7})
	if _, err := (BLCR{}).Checkpoint(p, n.LocalDisk, "a.ckpt"); err != nil {
		t.Fatal(err)
	}
	img, err := ReadImage(vtime.NewClock(), n.LocalDisk, "a.ckpt")
	if err != nil {
		t.Fatal(err)
	}
	if img.ProcessName != "app" || img.Regions["heap"][0] != 7 {
		t.Errorf("image = %+v", img)
	}
}

func TestCheckpointTimeProportionalToSize(t *testing.T) {
	// Fig. 5/6 premise: checkpoint time is dominated by file size.
	n := node()
	times := make([]vtime.Duration, 0, 3)
	for _, mb := range []int{4, 8, 16} {
		p := n.Spawn("app")
		p.SetRegion("data", make([]byte, mb<<20))
		st, err := BLCR{}.Checkpoint(p, n.LocalDisk, "s.ckpt")
		if err != nil {
			t.Fatal(err)
		}
		times = append(times, st.Time)
	}
	if !(times[1] > times[0] && times[2] > times[1]) {
		t.Errorf("times not increasing: %v", times)
	}
	ratio := float64(times[2]) / float64(times[1])
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("doubling size should ~double time, ratio = %.2f", ratio)
	}
}
