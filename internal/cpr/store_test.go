package cpr

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"checl/internal/hw"
	"checl/internal/proc"
	"checl/internal/store"
	"checl/internal/vtime"
)

func TestImageEncodingDeterministic(t *testing.T) {
	// The store deduplicates byte-identical chunks, so an unchanged
	// process must encode to an unchanged file — map iteration order must
	// not leak into the output.
	img := Image{
		ProcessName: "app",
		AppState:    []byte("state"),
		Regions: map[string][]byte{
			"heap": {1, 2, 3}, "stack": {4}, "data": make([]byte, 1000),
			"bss": {9, 9}, "checl.db": []byte("db"),
		},
	}
	first, err := encodeImage(img)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		again, err := encodeImage(img)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, again) {
			t.Fatal("encoding is not deterministic")
		}
	}
	back, err := decodeImage(first)
	if err != nil {
		t.Fatal(err)
	}
	if back.ProcessName != "app" || string(back.AppState) != "state" ||
		len(back.Regions) != 5 || back.Regions["heap"][2] != 3 {
		t.Errorf("round-trip image = %+v", back)
	}
}

func TestImageHeaderValidation(t *testing.T) {
	good, err := encodeImage(Image{ProcessName: "app", Regions: map[string][]byte{"r": {1, 2}}})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		mangle  func([]byte) []byte
		wantErr string
	}{
		{"truncated header", func(b []byte) []byte { return b[:10] }, "truncated"},
		{"truncated body", func(b []byte) []byte { return b[:len(b)-1] }, "checksum"},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, "bad magic"},
		{"future version", func(b []byte) []byte { b[len(imageMagic)+1] = 99; return b }, "version"},
		{"flipped body byte", func(b []byte) []byte { b[len(b)-1] ^= 0xFF; return b }, "checksum"},
	}
	for _, tc := range cases {
		mangled := tc.mangle(append([]byte(nil), good...))
		_, err := decodeImage(mangled)
		if err == nil {
			t.Errorf("%s: decode succeeded", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestStoreCheckpointRestartRoundtrip(t *testing.T) {
	n := node()
	st := store.New(n.LocalDisk, store.Config{})
	p := n.Spawn("app")
	p.SetRegion("heap", []byte{1, 2, 3, 4})
	p.SetRegion("data", make([]byte, 1<<20))

	cst, put, err := BLCR{}.CheckpointToStore(p, st, "app")
	if err != nil {
		t.Fatal(err)
	}
	if put == nil || put.Manifest != "app@1" || cst.Time <= 0 {
		t.Fatalf("stats = %+v, put = %+v", cst, put)
	}

	p.Kill()
	q, rst, deg, err := BLCR{}.RestartFromStore(n, st, "app")
	if err != nil {
		t.Fatal(err)
	}
	if deg != nil {
		t.Fatalf("clean restart reported degradation: %v", deg)
	}
	if q.Name != "app" || q.Region("heap")[2] != 3 || q.MemoryUsage() != 4+1<<20 {
		t.Error("restored image wrong")
	}
	if rst.Time <= 0 {
		t.Error("restart read time not charged")
	}
}

func TestStoreCheckpointDedupsUnchangedProcess(t *testing.T) {
	n := node()
	st := store.New(n.LocalDisk, store.Config{})
	p := n.Spawn("app")
	p.SetRegion("data", make([]byte, 2<<20))

	_, put1, err := BLCR{}.CheckpointToStore(p, st, "app")
	if err != nil {
		t.Fatal(err)
	}
	_, put2, err := BLCR{}.CheckpointToStore(p, st, "app")
	if err != nil {
		t.Fatal(err)
	}
	if put2.NewBytes != 0 {
		t.Errorf("unchanged process re-uploaded %d bytes (first wrote %d)", put2.NewBytes, put1.NewBytes)
	}
	if put2.Manifest != "app@2" {
		t.Errorf("manifest = %s", put2.Manifest)
	}
}

func TestStoreCheckpointEnforcesEligibility(t *testing.T) {
	n := node()
	st := store.New(n.LocalDisk, store.Config{})

	mapped := n.Spawn("opencl-app")
	mapped.MapDevice()
	var dme *DeviceMappedError
	if _, _, err := (BLCR{}).CheckpointToStore(mapped, st, "j1"); !errors.As(err, &dme) {
		t.Errorf("blcr store checkpoint of device-mapped process: err = %v", err)
	}

	app := n.Spawn("app")
	proxy := app.Fork("proxy")
	proxy.MapDevice()
	if _, _, err := (DMTCP{}).CheckpointToStore(app, st, "j2"); !errors.As(err, &dme) {
		t.Errorf("dmtcp store checkpoint with live proxy: err = %v", err)
	}
	if _, _, err := (BLCR{}).CheckpointToStore(app, st, "j2"); err != nil {
		t.Errorf("blcr should ignore the proxy child: %v", err)
	}

	dead := n.Spawn("dead")
	dead.Kill()
	if _, _, err := (BLCR{}).CheckpointToStore(dead, st, "j3"); err == nil {
		t.Error("store checkpoint of dead process must fail")
	}
}

func TestStoreCheckpointSurfacesNoSpace(t *testing.T) {
	n := node()
	tiny := proc.NewFS("tiny", hw.TableISpec().LocalDisk, proc.WithCapacity(32<<10))
	st := store.New(tiny, store.Config{})
	p := n.Spawn("app")
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(1)).Read(data) // incompressible, so it cannot squeeze under the cap
	p.SetRegion("data", data)
	_, _, err := BLCR{}.CheckpointToStore(p, st, "app")
	var nospace *proc.ErrNoSpace
	if !errors.As(err, &nospace) {
		t.Fatalf("err = %v, want *proc.ErrNoSpace", err)
	}
}

func TestReadImageFromStore(t *testing.T) {
	n := node()
	st := store.New(n.LocalDisk, store.Config{})
	p := n.Spawn("app")
	p.SetRegion("heap", []byte{7})
	if _, _, err := (BLCR{}).CheckpointToStore(p, st, "app"); err != nil {
		t.Fatal(err)
	}
	img, err := ReadImageFromStore(vtime.NewClock(), st, "app@1")
	if err != nil {
		t.Fatal(err)
	}
	if img.ProcessName != "app" || img.Regions["heap"][0] != 7 {
		t.Errorf("image = %+v", img)
	}
	if _, err := ReadImageFromStore(vtime.NewClock(), st, "nosuch"); err == nil {
		t.Error("reading a missing checkpoint must fail")
	}
}
