// Package cpr provides the conventional checkpoint/restart substrate that
// CheCL builds on: backends that dump a (simulated) process's host memory
// image to a checkpoint file on a simulated filesystem and restore it.
//
// Two backends mirror the systems discussed in the paper:
//
//   - BLCR: checkpoints a single process. It refuses a process whose
//     address space has GPU device mappings — the exact failure that makes
//     plain OpenCL processes uncheckpointable (§II) and that the API proxy
//     exists to avoid.
//   - DMTCP: checkpoints a process *and its children* by default, so it
//     fails when the API proxy (a child with device mappings) is alive; it
//     succeeds if the proxy is killed before the checkpoint and re-forked
//     afterwards (§V).
package cpr

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"checl/internal/proc"
	"checl/internal/vtime"
)

// Image is the content of a checkpoint file: the process's registered
// memory regions plus an opaque application-state blob.
type Image struct {
	ProcessName string
	Regions     map[string][]byte
	AppState    []byte
}

// Stats reports what a checkpoint or restart cost.
type Stats struct {
	Bytes int64          // checkpoint file size
	Time  vtime.Duration // virtual time spent writing or reading the file
}

// Backend is a conventional CPR system.
type Backend interface {
	// Name identifies the backend ("blcr", "dmtcp").
	Name() string
	// Checkpoint dumps p's memory image to path on fs.
	Checkpoint(p *proc.Process, fs *proc.FS, path string) (Stats, error)
	// Restart re-creates a process on node n from the file at path.
	Restart(n *proc.Node, fs *proc.FS, path string) (*proc.Process, Stats, error)
}

// encodeImage serialises an image to the on-disk representation.
func encodeImage(img Image) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(img); err != nil {
		return nil, fmt.Errorf("cpr: encoding image: %w", err)
	}
	return buf.Bytes(), nil
}

// decodeImage parses an on-disk checkpoint file.
func decodeImage(data []byte) (Image, error) {
	var img Image
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&img); err != nil {
		return Image{}, fmt.Errorf("cpr: decoding image: %w", err)
	}
	return img, nil
}

// ReadImage loads and decodes a checkpoint file without restarting it
// (used by tooling and by MPI global-snapshot aggregation).
func ReadImage(clock *vtime.Clock, fs *proc.FS, path string) (Image, error) {
	data, err := fs.ReadFile(clock, path)
	if err != nil {
		return Image{}, err
	}
	return decodeImage(data)
}

// BLCR is the Berkeley Lab Checkpoint/Restart-like backend.
type BLCR struct{}

// Name implements Backend.
func (BLCR) Name() string { return "blcr" }

// Checkpoint implements Backend. It fails with ErrDeviceMapped when the
// target process has device mappings in its address space.
func (BLCR) Checkpoint(p *proc.Process, fs *proc.FS, path string) (Stats, error) {
	if !p.Alive() {
		return Stats{}, fmt.Errorf("blcr: process %d (%s) is not running", p.PID, p.Name)
	}
	if p.DeviceMapped() {
		return Stats{}, &DeviceMappedError{Backend: "blcr", PID: p.PID, Name: p.Name}
	}
	img := Image{ProcessName: p.Name, Regions: p.SnapshotRegions()}
	data, err := encodeImage(img)
	if err != nil {
		return Stats{}, err
	}
	clock := p.Clock()
	sw := vtime.NewStopwatch(clock)
	if err := fs.WriteFile(clock, path, data); err != nil {
		return Stats{}, err
	}
	return Stats{Bytes: int64(len(data)), Time: sw.Elapsed()}, nil
}

// Restart implements Backend.
func (BLCR) Restart(n *proc.Node, fs *proc.FS, path string) (*proc.Process, Stats, error) {
	sw := vtime.NewStopwatch(n.Clock)
	data, err := fs.ReadFile(n.Clock, path)
	if err != nil {
		return nil, Stats{}, err
	}
	img, err := decodeImage(data)
	if err != nil {
		return nil, Stats{}, err
	}
	p := n.Spawn(img.ProcessName)
	p.RestoreRegions(img.Regions)
	return p, Stats{Bytes: int64(len(data)), Time: sw.Elapsed()}, nil
}

// DMTCP is the Distributed MultiThreaded CheckPointing-like backend: a
// user-level CPR system that checkpoints the whole process tree.
type DMTCP struct{}

// Name implements Backend.
func (DMTCP) Name() string { return "dmtcp" }

// Checkpoint implements Backend. DMTCP walks the process tree: a live
// child with device mappings (the API proxy) makes the checkpoint fail,
// reproducing the §V observation. Killing the proxy first makes it work.
func (DMTCP) Checkpoint(p *proc.Process, fs *proc.FS, path string) (Stats, error) {
	if !p.Alive() {
		return Stats{}, fmt.Errorf("dmtcp: process %d (%s) is not running", p.PID, p.Name)
	}
	var check func(q *proc.Process) error
	check = func(q *proc.Process) error {
		if q.DeviceMapped() {
			return &DeviceMappedError{Backend: "dmtcp", PID: q.PID, Name: q.Name}
		}
		for _, c := range q.Children() {
			if err := check(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := check(p); err != nil {
		return Stats{}, err
	}
	img := Image{ProcessName: p.Name, Regions: p.SnapshotRegions()}
	data, err := encodeImage(img)
	if err != nil {
		return Stats{}, err
	}
	clock := p.Clock()
	sw := vtime.NewStopwatch(clock)
	if err := fs.WriteFile(clock, path, data); err != nil {
		return Stats{}, err
	}
	return Stats{Bytes: int64(len(data)), Time: sw.Elapsed()}, nil
}

// Restart implements Backend.
func (DMTCP) Restart(n *proc.Node, fs *proc.FS, path string) (*proc.Process, Stats, error) {
	return BLCR{}.Restart(n, fs, path)
}

// DeviceMappedError reports the canonical CPR failure on GPU processes.
type DeviceMappedError struct {
	Backend string
	PID     int
	Name    string
}

func (e *DeviceMappedError) Error() string {
	return fmt.Sprintf("%s: cannot checkpoint process %d (%s): address space has device memory mappings",
		e.Backend, e.PID, e.Name)
}
