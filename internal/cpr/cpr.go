// Package cpr provides the conventional checkpoint/restart substrate that
// CheCL builds on: backends that dump a (simulated) process's host memory
// image to a checkpoint file on a simulated filesystem and restore it.
//
// Two backends mirror the systems discussed in the paper:
//
//   - BLCR: checkpoints a single process. It refuses a process whose
//     address space has GPU device mappings — the exact failure that makes
//     plain OpenCL processes uncheckpointable (§II) and that the API proxy
//     exists to avoid.
//   - DMTCP: checkpoints a process *and its children* by default, so it
//     fails when the API proxy (a child with device mappings) is alive; it
//     succeeds if the proxy is killed before the checkpoint and re-forked
//     afterwards (§V).
package cpr

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"

	"checl/internal/proc"
	"checl/internal/vtime"
)

// Image is the content of a checkpoint file: the process's registered
// memory regions plus an opaque application-state blob.
type Image struct {
	ProcessName string
	Regions     map[string][]byte
	AppState    []byte
}

// Stats reports what a checkpoint or restart cost.
type Stats struct {
	Bytes int64          // checkpoint file size
	Time  vtime.Duration // virtual time spent writing or reading the file
}

// Backend is a conventional CPR system.
type Backend interface {
	// Name identifies the backend ("blcr", "dmtcp").
	Name() string
	// Checkpoint dumps p's memory image to path on fs.
	Checkpoint(p *proc.Process, fs *proc.FS, path string) (Stats, error)
	// Restart re-creates a process on node n from the file at path.
	Restart(n *proc.Node, fs *proc.FS, path string) (*proc.Process, Stats, error)
}

// On-disk image framing. Every checkpoint file starts with a fixed
// header — magic, format version, SHA-256 of the body — so truncated or
// corrupt files fail with a clear error instead of a raw decode failure.
// The body is a deterministic binary encoding (regions sorted by name):
// byte-identical inputs produce byte-identical files, which is what lets
// the content-addressed store deduplicate successive checkpoints.
const imageVersion = 1

var imageMagic = []byte("CHECLIMG")

func appendBytes(buf []byte, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

func readBytes(r *bytes.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > uint64(r.Len()) {
		return nil, fmt.Errorf("field of %d bytes exceeds remaining %d", n, r.Len())
	}
	b := make([]byte, n)
	if _, err := r.Read(b); err != nil {
		return nil, err
	}
	return b, nil
}

// encodeImage serialises an image to the on-disk representation.
func encodeImage(img Image) ([]byte, error) {
	body := appendBytes(nil, []byte(img.ProcessName))
	body = appendBytes(body, img.AppState)
	names := make([]string, 0, len(img.Regions))
	for name := range img.Regions {
		names = append(names, name)
	}
	sort.Strings(names)
	body = binary.AppendUvarint(body, uint64(len(names)))
	for _, name := range names {
		body = appendBytes(body, []byte(name))
		body = appendBytes(body, img.Regions[name])
	}

	sum := sha256.Sum256(body)
	out := make([]byte, 0, len(imageMagic)+2+len(sum)+len(body))
	out = append(out, imageMagic...)
	out = binary.BigEndian.AppendUint16(out, imageVersion)
	out = append(out, sum[:]...)
	return append(out, body...), nil
}

// decodeImage parses an on-disk checkpoint file, validating the header
// before touching the body.
func decodeImage(data []byte) (Image, error) {
	headerLen := len(imageMagic) + 2 + sha256.Size
	if len(data) < headerLen {
		return Image{}, fmt.Errorf("cpr: image truncated (%d bytes, header is %d)", len(data), headerLen)
	}
	if !bytes.Equal(data[:len(imageMagic)], imageMagic) {
		return Image{}, fmt.Errorf("cpr: not a checkpoint image (bad magic)")
	}
	if v := binary.BigEndian.Uint16(data[len(imageMagic):]); v != imageVersion {
		return Image{}, fmt.Errorf("cpr: unsupported image version %d (this build reads %d)", v, imageVersion)
	}
	want := data[len(imageMagic)+2 : headerLen]
	body := data[headerLen:]
	if got := sha256.Sum256(body); !bytes.Equal(want, got[:]) {
		return Image{}, fmt.Errorf("cpr: image corrupt (body checksum mismatch)")
	}

	r := bytes.NewReader(body)
	img := Image{Regions: map[string][]byte{}}
	name, err := readBytes(r)
	if err != nil {
		return Image{}, fmt.Errorf("cpr: decoding image: %w", err)
	}
	img.ProcessName = string(name)
	if img.AppState, err = readBytes(r); err != nil {
		return Image{}, fmt.Errorf("cpr: decoding image: %w", err)
	}
	count, err := binary.ReadUvarint(r)
	if err != nil {
		return Image{}, fmt.Errorf("cpr: decoding image: %w", err)
	}
	for i := uint64(0); i < count; i++ {
		rname, err := readBytes(r)
		if err != nil {
			return Image{}, fmt.Errorf("cpr: decoding image region %d: %w", i, err)
		}
		rdata, err := readBytes(r)
		if err != nil {
			return Image{}, fmt.Errorf("cpr: decoding image region %q: %w", rname, err)
		}
		img.Regions[string(rname)] = rdata
	}
	return img, nil
}

// ReadImage loads and decodes a checkpoint file without restarting it
// (used by tooling and by MPI global-snapshot aggregation).
func ReadImage(clock *vtime.Clock, fs *proc.FS, path string) (Image, error) {
	data, err := fs.ReadFile(clock, path)
	if err != nil {
		return Image{}, err
	}
	return decodeImage(data)
}

// BLCR is the Berkeley Lab Checkpoint/Restart-like backend.
type BLCR struct{}

// Name implements Backend.
func (BLCR) Name() string { return "blcr" }

// Checkpoint implements Backend. It fails with ErrDeviceMapped when the
// target process has device mappings in its address space.
func (BLCR) Checkpoint(p *proc.Process, fs *proc.FS, path string) (Stats, error) {
	if err := checkpointable("blcr", p, false); err != nil {
		return Stats{}, err
	}
	img := Image{ProcessName: p.Name, Regions: p.SnapshotRegions()}
	data, err := encodeImage(img)
	if err != nil {
		return Stats{}, err
	}
	clock := p.Clock()
	sw := vtime.NewStopwatch(clock)
	if err := fs.WriteFile(clock, path, data); err != nil {
		return Stats{}, err
	}
	return Stats{Bytes: int64(len(data)), Time: sw.Elapsed()}, nil
}

// Restart implements Backend.
func (BLCR) Restart(n *proc.Node, fs *proc.FS, path string) (*proc.Process, Stats, error) {
	sw := vtime.NewStopwatch(n.Clock)
	data, err := fs.ReadFile(n.Clock, path)
	if err != nil {
		return nil, Stats{}, err
	}
	p, st, err := RestartImage(n, data)
	if err != nil {
		return nil, Stats{}, err
	}
	st.Time = sw.Elapsed()
	return p, st, nil
}

// RestartImage re-creates a process on node n from an in-memory checkpoint
// image. It is the file-less half of Restart, for callers that already
// hold the bytes — e.g. one rank's segment of an MPI global snapshot
// fetched from a content-addressed store — and have charged the read cost
// wherever the bytes came from. The returned Stats carry only the image
// size; no virtual time is spent here.
func RestartImage(n *proc.Node, data []byte) (*proc.Process, Stats, error) {
	img, err := decodeImage(data)
	if err != nil {
		return nil, Stats{}, err
	}
	p := n.Spawn(img.ProcessName)
	p.RestoreRegions(img.Regions)
	return p, Stats{Bytes: int64(len(data))}, nil
}

// DMTCP is the Distributed MultiThreaded CheckPointing-like backend: a
// user-level CPR system that checkpoints the whole process tree.
type DMTCP struct{}

// Name implements Backend.
func (DMTCP) Name() string { return "dmtcp" }

// Checkpoint implements Backend. DMTCP walks the process tree: a live
// child with device mappings (the API proxy) makes the checkpoint fail,
// reproducing the §V observation. Killing the proxy first makes it work.
func (DMTCP) Checkpoint(p *proc.Process, fs *proc.FS, path string) (Stats, error) {
	if err := checkpointable("dmtcp", p, true); err != nil {
		return Stats{}, err
	}
	img := Image{ProcessName: p.Name, Regions: p.SnapshotRegions()}
	data, err := encodeImage(img)
	if err != nil {
		return Stats{}, err
	}
	clock := p.Clock()
	sw := vtime.NewStopwatch(clock)
	if err := fs.WriteFile(clock, path, data); err != nil {
		return Stats{}, err
	}
	return Stats{Bytes: int64(len(data)), Time: sw.Elapsed()}, nil
}

// Restart implements Backend.
func (DMTCP) Restart(n *proc.Node, fs *proc.FS, path string) (*proc.Process, Stats, error) {
	return BLCR{}.Restart(n, fs, path)
}

// DeviceMappedError reports the canonical CPR failure on GPU processes.
type DeviceMappedError struct {
	Backend string
	PID     int
	Name    string
}

func (e *DeviceMappedError) Error() string {
	return fmt.Sprintf("%s: cannot checkpoint process %d (%s): address space has device memory mappings",
		e.Backend, e.PID, e.Name)
}
