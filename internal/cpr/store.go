package cpr

import (
	"crypto/sha256"
	"fmt"
	"sort"

	"checl/internal/proc"
	"checl/internal/store"
	"checl/internal/vtime"
)

// StoreBackend is a Backend that can also checkpoint into and restart
// from a content-addressed checkpoint store. Both simulated backends
// implement it; the flat-file Backend methods remain for the baseline
// (non-deduplicated) path the ablations compare against.
type StoreBackend interface {
	Backend
	// CheckpointToStore dumps p's memory image into st under job,
	// deduplicating against the job's earlier checkpoints (and any other
	// job's chunks). The same eligibility rules as Checkpoint apply.
	CheckpointToStore(p *proc.Process, st store.Backend, job string) (Stats, *store.PutStats, error)
	// CheckpointToStoreIncremental is CheckpointToStore with clean-region
	// hints: regions whose names map to true in clean are asserted
	// byte-identical to the job's previous checkpoint, and the store
	// reuses that generation's chunk refs for them instead of re-chunking
	// (store.PutSegmented). A nil map selects the legacy unsegmented
	// encoding, byte-identical to CheckpointToStore.
	CheckpointToStoreIncremental(p *proc.Process, st store.Backend, job string, clean map[string]bool) (Stats, *store.PutStats, error)
	// RestartFromStore re-creates a process on node n from a store
	// checkpoint. ref is a manifest ID ("job@seq") or a bare job name
	// (its latest checkpoint). When the newest generation cannot be
	// restored — corrupt past healing, or not a decodable image — the
	// restart walks the generation chain to the newest one that can, and
	// the returned *store.DegradedRestore reports what was skipped; it is
	// nil for a clean restore of the newest generation. When no
	// generation restores at all the DegradedRestore is also the error.
	RestartFromStore(n *proc.Node, st store.Backend, ref string) (*proc.Process, Stats, *store.DegradedRestore, error)
}

// checkpointable reports the same eligibility the flat-file Checkpoint
// paths enforce: backend "blcr" refuses a device-mapped process,
// "dmtcp" refuses a device mapping anywhere in the process tree.
func checkpointable(backend string, p *proc.Process, tree bool) error {
	if !p.Alive() {
		return fmt.Errorf("%s: process %d (%s) is not running", backend, p.PID, p.Name)
	}
	var check func(q *proc.Process) error
	check = func(q *proc.Process) error {
		if q.DeviceMapped() {
			return &DeviceMappedError{Backend: backend, PID: q.PID, Name: q.Name}
		}
		if tree {
			for _, c := range q.Children() {
				if err := check(c); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return check(p)
}

// checkpointToStore is the shared store write path: encode the image
// deterministically and hand it to the store, which chunks,
// deduplicates, compresses and journals it. A non-nil clean map selects
// the segmented encoding: each region becomes its own store segment so
// unchanged regions reuse the parent generation's chunk refs.
func checkpointToStore(backend string, p *proc.Process, st store.Backend, job string, tree bool, clean map[string]bool) (Stats, *store.PutStats, error) {
	if err := checkpointable(backend, p, tree); err != nil {
		return Stats{}, nil, err
	}
	img := Image{ProcessName: p.Name, Regions: p.SnapshotRegions()}
	data, err := encodeImage(img)
	if err != nil {
		return Stats{}, nil, err
	}
	var put store.PutStats
	if clean == nil {
		_, put, err = st.Put(p.Clock(), job, data)
	} else {
		var segs []store.Segment
		if segs, err = imageSegments(img, int64(len(data)), clean); err != nil {
			return Stats{}, nil, err
		}
		_, put, err = st.PutSegmented(p.Clock(), job, data, segs)
	}
	if err != nil {
		return Stats{}, nil, fmt.Errorf("%s: checkpoint to store: %w", backend, err)
	}
	return Stats{Bytes: int64(len(data)), Time: put.Time}, &put, nil
}

// imageSegments derives the store segment map of an image's deterministic
// encoding: a "_head" segment covering the frame header, process name,
// app state and region count (always dirty — the header checksum changes
// whenever anything does), then one "region/<name>" segment per region in
// the encoder's sorted order. Regions whose names map to true in clean
// are marked Clean. total is the full encoded length, used to verify the
// derived offsets stay in lockstep with encodeImage.
func imageSegments(img Image, total int64, clean map[string]bool) ([]store.Segment, error) {
	uvarintLen := func(n uint64) int64 {
		l := int64(1)
		for n >= 0x80 {
			n >>= 7
			l++
		}
		return l
	}
	frameLen := func(n int) int64 { return uvarintLen(uint64(n)) + int64(n) }

	names := make([]string, 0, len(img.Regions))
	for name := range img.Regions {
		names = append(names, name)
	}
	sort.Strings(names)

	off := int64(len(imageMagic)+2+sha256.Size) +
		frameLen(len(img.ProcessName)) + frameLen(len(img.AppState)) +
		uvarintLen(uint64(len(names)))
	segs := []store.Segment{{Name: "_head", Off: 0, Len: off}}
	for _, name := range names {
		n := frameLen(len(name)) + frameLen(len(img.Regions[name]))
		segs = append(segs, store.Segment{Name: "region/" + name, Off: off, Len: n, Clean: clean[name]})
		off += n
	}
	if off != total {
		return nil, fmt.Errorf("cpr: segment map out of sync with encoding (%d vs %d bytes)", off, total)
	}
	return segs, nil
}

// SnapshotStoreImage encodes p's memory image and derives its store
// segment map without writing anything to a store: the overlapped
// checkpoint path snapshots the process synchronously, releases the
// application, and hands the encoded bytes to a background PutSegmented.
// A nil clean map yields a nil segment map (legacy unsegmented write).
func SnapshotStoreImage(b Backend, p *proc.Process, clean map[string]bool) ([]byte, []store.Segment, error) {
	tree := b.Name() == "dmtcp"
	if err := checkpointable(b.Name(), p, tree); err != nil {
		return nil, nil, err
	}
	img := Image{ProcessName: p.Name, Regions: p.SnapshotRegions()}
	data, err := encodeImage(img)
	if err != nil {
		return nil, nil, err
	}
	if clean == nil {
		return data, nil, nil
	}
	segs, err := imageSegments(img, int64(len(data)), clean)
	if err != nil {
		return nil, nil, err
	}
	return data, segs, nil
}

// CheckpointToStore implements StoreBackend.
func (BLCR) CheckpointToStore(p *proc.Process, st store.Backend, job string) (Stats, *store.PutStats, error) {
	return checkpointToStore("blcr", p, st, job, false, nil)
}

// CheckpointToStore implements StoreBackend.
func (DMTCP) CheckpointToStore(p *proc.Process, st store.Backend, job string) (Stats, *store.PutStats, error) {
	return checkpointToStore("dmtcp", p, st, job, true, nil)
}

// CheckpointToStoreIncremental implements StoreBackend.
func (BLCR) CheckpointToStoreIncremental(p *proc.Process, st store.Backend, job string, clean map[string]bool) (Stats, *store.PutStats, error) {
	return checkpointToStore("blcr", p, st, job, false, clean)
}

// CheckpointToStoreIncremental implements StoreBackend.
func (DMTCP) CheckpointToStoreIncremental(p *proc.Process, st store.Backend, job string, clean map[string]bool) (Stats, *store.PutStats, error) {
	return checkpointToStore("dmtcp", p, st, job, true, clean)
}

// restartFromStore is the shared store restart path: walk the generation
// chain newest-first, taking the first checkpoint that both assembles
// bit-identical (healed from replicas where possible) and decodes as a
// process image.
func restartFromStore(n *proc.Node, st store.Backend, ref string) (*proc.Process, Stats, *store.DegradedRestore, error) {
	sw := vtime.NewStopwatch(n.Clock)
	var img Image
	validate := func(data []byte, _ store.Manifest) error {
		i, err := decodeImage(data)
		if err != nil {
			return err
		}
		img = i
		return nil
	}
	data, _, deg, err := st.GetNewestRestorable(n.Clock, ref, validate)
	if err != nil {
		return nil, Stats{}, deg, err
	}
	p := n.Spawn(img.ProcessName)
	p.RestoreRegions(img.Regions)
	return p, Stats{Bytes: int64(len(data)), Time: sw.Elapsed()}, deg, nil
}

// RestartFromStore implements StoreBackend.
func (BLCR) RestartFromStore(n *proc.Node, st store.Backend, ref string) (*proc.Process, Stats, *store.DegradedRestore, error) {
	return restartFromStore(n, st, ref)
}

// RestartFromStore implements StoreBackend.
func (DMTCP) RestartFromStore(n *proc.Node, st store.Backend, ref string) (*proc.Process, Stats, *store.DegradedRestore, error) {
	return restartFromStore(n, st, ref)
}

// ReadImageFromStore loads and decodes a store checkpoint without
// restarting it (tooling, MPI global-snapshot aggregation).
func ReadImageFromStore(clock *vtime.Clock, st store.Backend, ref string) (Image, error) {
	data, _, err := st.Get(clock, ref)
	if err != nil {
		return Image{}, err
	}
	return decodeImage(data)
}
