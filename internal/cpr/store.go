package cpr

import (
	"fmt"

	"checl/internal/proc"
	"checl/internal/store"
	"checl/internal/vtime"
)

// StoreBackend is a Backend that can also checkpoint into and restart
// from a content-addressed checkpoint store. Both simulated backends
// implement it; the flat-file Backend methods remain for the baseline
// (non-deduplicated) path the ablations compare against.
type StoreBackend interface {
	Backend
	// CheckpointToStore dumps p's memory image into st under job,
	// deduplicating against the job's earlier checkpoints (and any other
	// job's chunks). The same eligibility rules as Checkpoint apply.
	CheckpointToStore(p *proc.Process, st *store.Store, job string) (Stats, *store.PutStats, error)
	// RestartFromStore re-creates a process on node n from a store
	// checkpoint. ref is a manifest ID ("job@seq") or a bare job name
	// (its latest checkpoint). When the newest generation cannot be
	// restored — corrupt past healing, or not a decodable image — the
	// restart walks the generation chain to the newest one that can, and
	// the returned *store.DegradedRestore reports what was skipped; it is
	// nil for a clean restore of the newest generation. When no
	// generation restores at all the DegradedRestore is also the error.
	RestartFromStore(n *proc.Node, st *store.Store, ref string) (*proc.Process, Stats, *store.DegradedRestore, error)
}

// checkpointable reports the same eligibility the flat-file Checkpoint
// paths enforce: backend "blcr" refuses a device-mapped process,
// "dmtcp" refuses a device mapping anywhere in the process tree.
func checkpointable(backend string, p *proc.Process, tree bool) error {
	if !p.Alive() {
		return fmt.Errorf("%s: process %d (%s) is not running", backend, p.PID, p.Name)
	}
	var check func(q *proc.Process) error
	check = func(q *proc.Process) error {
		if q.DeviceMapped() {
			return &DeviceMappedError{Backend: backend, PID: q.PID, Name: q.Name}
		}
		if tree {
			for _, c := range q.Children() {
				if err := check(c); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return check(p)
}

// checkpointToStore is the shared store write path: encode the image
// deterministically and hand it to the store, which chunks,
// deduplicates, compresses and journals it.
func checkpointToStore(backend string, p *proc.Process, st *store.Store, job string, tree bool) (Stats, *store.PutStats, error) {
	if err := checkpointable(backend, p, tree); err != nil {
		return Stats{}, nil, err
	}
	img := Image{ProcessName: p.Name, Regions: p.SnapshotRegions()}
	data, err := encodeImage(img)
	if err != nil {
		return Stats{}, nil, err
	}
	_, put, err := st.Put(p.Clock(), job, data)
	if err != nil {
		return Stats{}, nil, fmt.Errorf("%s: checkpoint to store: %w", backend, err)
	}
	return Stats{Bytes: int64(len(data)), Time: put.Time}, &put, nil
}

// CheckpointToStore implements StoreBackend.
func (BLCR) CheckpointToStore(p *proc.Process, st *store.Store, job string) (Stats, *store.PutStats, error) {
	return checkpointToStore("blcr", p, st, job, false)
}

// CheckpointToStore implements StoreBackend.
func (DMTCP) CheckpointToStore(p *proc.Process, st *store.Store, job string) (Stats, *store.PutStats, error) {
	return checkpointToStore("dmtcp", p, st, job, true)
}

// restartFromStore is the shared store restart path: walk the generation
// chain newest-first, taking the first checkpoint that both assembles
// bit-identical (healed from replicas where possible) and decodes as a
// process image.
func restartFromStore(n *proc.Node, st *store.Store, ref string) (*proc.Process, Stats, *store.DegradedRestore, error) {
	sw := vtime.NewStopwatch(n.Clock)
	var img Image
	validate := func(data []byte, _ store.Manifest) error {
		i, err := decodeImage(data)
		if err != nil {
			return err
		}
		img = i
		return nil
	}
	data, _, deg, err := st.GetNewestRestorable(n.Clock, ref, validate)
	if err != nil {
		return nil, Stats{}, deg, err
	}
	p := n.Spawn(img.ProcessName)
	p.RestoreRegions(img.Regions)
	return p, Stats{Bytes: int64(len(data)), Time: sw.Elapsed()}, deg, nil
}

// RestartFromStore implements StoreBackend.
func (BLCR) RestartFromStore(n *proc.Node, st *store.Store, ref string) (*proc.Process, Stats, *store.DegradedRestore, error) {
	return restartFromStore(n, st, ref)
}

// RestartFromStore implements StoreBackend.
func (DMTCP) RestartFromStore(n *proc.Node, st *store.Store, ref string) (*proc.Process, Stats, *store.DegradedRestore, error) {
	return restartFromStore(n, st, ref)
}

// ReadImageFromStore loads and decodes a store checkpoint without
// restarting it (tooling, MPI global-snapshot aggregation).
func ReadImageFromStore(clock *vtime.Clock, st *store.Store, ref string) (Image, error) {
	data, _, err := st.Get(clock, ref)
	if err != nil {
		return Image{}, err
	}
	return decodeImage(data)
}
