// checl-inspect creates a demonstration checkpoint and prints what a
// CheCL checkpoint file contains: the process memory image regions and
// the object database (per-class object counts, buffer sizes, program
// sources, recorded kernel arguments). It is the debugging view a CheCL
// operator would use to understand a snapshot.
//
// Usage:
//
//	checl-inspect [-app name] [-scale f]
package main

import (
	"flag"
	"fmt"
	"os"

	"checl/internal/apps"
	"checl/internal/core"
	"checl/internal/cpr"
	"checl/internal/hw"
	"checl/internal/ocl"
	"checl/internal/proc"
	"checl/internal/vtime"
)

func main() {
	appName := flag.String("app", "oclMatrixMul", "application to checkpoint and inspect")
	scale := flag.Float64("scale", 0.5, "problem-size multiplier")
	flag.Parse()

	app, ok := apps.ByName(*appName)
	if !ok {
		fmt.Fprintf(os.Stderr, "checl-inspect: unknown app %q\n", *appName)
		os.Exit(2)
	}

	node := proc.NewNode("pc0", hw.TableISpec(), ocl.NVIDIA())
	p := node.Spawn(app.Name)
	c, err := core.Attach(p, core.Options{})
	if err != nil {
		fatal(err)
	}
	defer c.Detach()
	env := &apps.Env{API: c, DeviceMask: ocl.DeviceTypeGPU, Scale: *scale}
	if _, err := app.Run(env); err != nil {
		fatal(err)
	}
	st, err := c.Checkpoint(node.LocalDisk, app.Name+".ckpt")
	if err != nil {
		fatal(err)
	}

	fmt.Printf("checkpoint %s (%s mode, %s filesystem)\n", st.Path, c.Options().Mode, st.FSName)
	fmt.Printf("  file size:     %.3f MB\n", float64(st.FileSize)/1e6)
	fmt.Printf("  staged:        %d buffers, %.3f MB device data\n",
		st.StagedBuffers, float64(st.StagedBytes)/1e6)
	fmt.Printf("  phases:        sync %s | preprocess %s | write %s | postprocess %s\n",
		st.Phases.Sync, st.Phases.Preprocess, st.Phases.Write, st.Phases.Postprocess)

	img, err := cpr.ReadImage(vtime.NewClock(), node.LocalDisk, st.Path)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nprocess image of %q:\n", img.ProcessName)
	for name, region := range img.Regions {
		fmt.Printf("  region %-12s %10d bytes\n", name, len(region))
	}

	fmt.Println("\nobject database (live CheCL objects per class, restore order):")
	counts := c.ObjectCounts()
	for _, class := range core.RestoreOrder {
		fmt.Printf("  %-10s %d\n", class, counts[class])
	}

	fmt.Println("\nwhat a restart will do:")
	fmt.Println("  1. restore the host image with the conventional CPR backend")
	fmt.Println("  2. fork a fresh API proxy (new OpenCL handle generation)")
	fmt.Println("  3. recreate objects in the order above; re-upload buffer data;")
	fmt.Println("     recompile programs; replay clSetKernelArg; mint dummy events")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "checl-inspect: %v\n", err)
	os.Exit(1)
}
