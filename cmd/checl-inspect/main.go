// checl-inspect creates a demonstration checkpoint and prints what a
// CheCL checkpoint file contains: the process memory image regions and
// the object database (per-class object counts, buffer sizes, program
// sources, recorded kernel arguments). It is the debugging view a CheCL
// operator would use to understand a snapshot.
//
// Usage:
//
//	checl-inspect [-app name] [-scale f]             inspect a flat checkpoint file
//	checl-inspect [-faults N] ...                    crash the proxy every N calls while the
//	                                                 app runs; print fault-tolerance counters
//	checl-inspect [flags] store ls                   list a demo store's manifests and chunks
//	checl-inspect [flags] store fsck                 verify every chunk and manifest
//	checl-inspect [flags] store scrub                repair the store from its replica
//	checl-inspect [-disk-faults N] store ...         inject a disk fault every N filesystem
//	                                                 operations while the store fills
//	checl-inspect [flags] store fleet                checkpoint into a 6-node 4+2 erasure-coded
//	                                                 fleet; show placement, a degraded read with
//	                                                 m nodes down, and a node-replacement rebuild
//	                                                 (-node-faults N injects node-level faults)
//	checl-inspect [flags] fleet                      run a bursty fleet-scheduler scenario and
//	                                                 render utilization, queueing, migrations,
//	                                                 evictions and the latency histogram
//	checl-inspect [flags] mpi                        kill one rank of an MPI job mid-epoch and
//	                                                 partial-restart it from its segment of the
//	                                                 committed generation; print the per-rank
//	                                                 log/replay/stall accounting
//
// The store subcommands checkpoint the demo app twice into a
// content-addressed store (with one replica attached), so `ls` shows
// dedup at work, `fsck` walks a non-trivial chunk set, and `scrub` under
// -disk-faults has real damage to heal. fsck and scrub exit non-zero when
// findings remain, so CI can gate on them.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"checl/internal/apps"
	"checl/internal/core"
	"checl/internal/cpr"
	"checl/internal/hw"
	"checl/internal/ipc"
	"checl/internal/ocl"
	"checl/internal/proc"
	"checl/internal/proxy"
	"checl/internal/store"
	"checl/internal/vtime"
)

func main() {
	appName := flag.String("app", "oclMatrixMul", "application to checkpoint and inspect")
	scale := flag.Float64("scale", 0.5, "problem-size multiplier")
	transport := flag.String("transport", "framed",
		"app<->proxy transport: \"framed\" (length-prefixed stream) or \"ring\" (shared-memory ring)")
	faults := flag.Int("faults", 0, "crash the API proxy every N calls (0 disables fault injection)")
	diskFaults := flag.Int("disk-faults", 0, "inject a disk fault every N store filesystem operations (0 disables)")
	nodeFaults := flag.Int("node-faults", 0, "store fleet: inject a node fault (crash/slow/rot/torn write) every N shard operations (0 disables)")
	incremental := flag.Bool("incremental", false,
		"attach with incremental checkpointing (parallel drain) and show the per-generation dirty/clean split")
	speculative := flag.Bool("speculative", false,
		"open a speculative (stop-free) checkpoint epoch before each checkpoint and show the per-generation STALL split")
	fleetJobs := flag.Int("fleet-jobs", 400, "fleet: number of jobs in the bursty workload")
	fleetSeed := flag.Int64("fleet-seed", 42, "fleet: traffic seed")
	fleetGPUs := flag.Int("fleet-gpus", 4, "fleet: GPU nodes in the inventory")
	fleetCPUs := flag.Int("fleet-cpus", 2, "fleet: CPU-only nodes in the inventory")
	fleetSample := flag.Int("fleet-sample", 0, "fleet: run every Nth job through the real core+store checkpoint path (0 disables)")
	fleetNoMig := flag.Bool("fleet-no-migration", false, "fleet: disable rebalancing migrations")
	fleetNoPre := flag.Bool("fleet-no-preemption", false, "fleet: disable checkpoint-evict preemption")
	mpiRanks := flag.Int("mpi-ranks", 4, "mpi: world size (one rank per node)")
	mpiEpochs := flag.Int("mpi-epochs", 3, "mpi: compute/checkpoint epochs")
	mpiKillRank := flag.Int("mpi-kill-rank", 2, "mpi: rank to kill (-1 picks a seeded victim)")
	mpiKillOp := flag.Int("mpi-kill-op", 10, "mpi: kill the victim at its Nth MPI operation")
	flag.Parse()

	if args := flag.Args(); len(args) > 0 {
		if args[0] == "fleet" && len(args) == 1 {
			fleetCmd(*fleetJobs, *fleetSeed, *fleetGPUs, *fleetCPUs, *fleetSample, !*fleetNoMig, !*fleetNoPre)
			return
		}
		if args[0] == "mpi" && len(args) == 1 {
			mpiCmd(*mpiRanks, *mpiEpochs, *mpiKillRank, *mpiKillOp)
			return
		}
		if args[0] != "store" || len(args) != 2 ||
			(args[1] != "ls" && args[1] != "fsck" && args[1] != "scrub" && args[1] != "fleet") {
			fmt.Fprintf(os.Stderr, "checl-inspect: unknown command %q (want \"store ls\", \"store fsck\", \"store scrub\", \"store fleet\", \"fleet\" or \"mpi\")\n", args)
			os.Exit(2)
		}
		if args[1] == "fleet" {
			storeFleetCmd(*appName, *scale, *nodeFaults)
			return
		}
		storeCmd(*appName, *scale, args[1], *diskFaults)
		return
	}

	app, ok := apps.ByName(*appName)
	if !ok {
		fmt.Fprintf(os.Stderr, "checl-inspect: unknown app %q\n", *appName)
		os.Exit(2)
	}

	node := proc.NewNode("pc0", hw.TableISpec(), ocl.NVIDIA())
	p := node.Spawn(app.Name)
	opts := core.Options{}
	switch *transport {
	case "framed":
		// The default stream transport; opts.Transport zero value.
	case "ring":
		opts.Transport = proxy.TransportRing
	default:
		fmt.Fprintf(os.Stderr, "checl-inspect: unknown transport %q (want \"framed\" or \"ring\")\n", *transport)
		os.Exit(2)
	}
	if *incremental {
		opts.Incremental = true
		opts.DrainWorkers = 8
	}
	if *speculative {
		opts.SpeculativeDrain = true
		if opts.DrainWorkers == 0 {
			opts.DrainWorkers = 8
		}
	}
	var inj *ipc.FaultInjector
	if *faults > 0 {
		// Seeded kill-every-N mix: connection kills at every frame position
		// plus full proxy crashes. AutoFailover + ShadowFull make the run
		// indistinguishable from a fault-free one, minus the recovery time.
		inj = ipc.NewFaultInjector(ipc.FaultPlan{
			Seed:      2026,
			EveryN:    *faults,
			SkipFirst: 4,
			Kinds: []ipc.FaultKind{
				ipc.FaultKillBeforeRequest,
				ipc.FaultKillMidRequest,
				ipc.FaultKillBeforeResponse,
				ipc.FaultKillBetween,
				ipc.FaultKillMidResponse,
				ipc.FaultCrashServer,
			},
		})
		opts.AutoFailover = true
		opts.Shadow = core.ShadowFull
		opts.Fault = inj
	}
	c, err := core.Attach(p, opts)
	if err != nil {
		fatal(err)
	}
	defer c.Detach()
	env := &apps.Env{API: c, DeviceMask: ocl.DeviceTypeGPU, Scale: *scale}
	if _, err := app.Run(env); err != nil {
		fatal(err)
	}
	runStats := c.Proxy().Client.Stats()
	if inj != nil {
		fs := c.FailoverStats()
		cs := c.Proxy().Client.Stats()
		fmt.Printf("fault injection (kill/crash every %d calls, seed 2026):\n", *faults)
		fmt.Printf("  injected:      %d faults over %d proxied calls\n", inj.Injected(), inj.Calls())
		fmt.Printf("  retries:       %d call retries, %d reconnects (current proxy)\n", cs.Retries, cs.Reconnects)
		fmt.Printf("  dedupe:        %d responses replayed from the seq cache\n", c.Proxy().Replayed())
		fmt.Printf("  failovers:     %d proxy respawns, %d calls replayed to rebind\n", fs.Failovers, fs.ReplayedCalls)
		fmt.Printf("  recovery:      last %s, total %s\n\n", fs.LastRecovery, fs.TotalRecovery)
	}
	if *speculative {
		// The epoch would normally open at a checkpoint signal; the
		// inspector opens it explicitly so the drain below is overlapped.
		if err := c.BeginCheckpointEpoch(); err != nil {
			fatal(err)
		}
	}
	st, err := c.Checkpoint(node.LocalDisk, app.Name+".ckpt")
	if err != nil {
		fatal(err)
	}
	printTransport(*transport, runStats, c.Proxy().Client.Stats())

	fmt.Printf("checkpoint %s (%s mode, %s filesystem)\n", st.Path, c.Options().Mode, st.FSName)
	fmt.Printf("  file size:     %.3f MB\n", float64(st.FileSize)/1e6)
	fmt.Printf("  staged:        %d buffers, %.3f MB device data\n",
		st.StagedBuffers, float64(st.StagedBytes)/1e6)
	printDrain(st)
	fmt.Printf("  phases:        sync %s | preprocess %s | write %s | postprocess %s\n",
		st.Phases.Sync, st.Phases.Preprocess, st.Phases.Write, st.Phases.Postprocess)

	if *incremental {
		// A second generation of the idle application: every buffer is
		// clean, so the drain copies nothing and the store/file payload is
		// all parent reuse.
		if *speculative {
			if err := c.BeginCheckpointEpoch(); err != nil {
				fatal(err)
			}
		}
		st2, err := c.Checkpoint(node.LocalDisk, app.Name+".ckpt")
		if err != nil {
			fatal(err)
		}
		fmt.Println("\nincremental generation 2 (application idle since generation 1):")
		printDrain(st2)
		fmt.Printf("  phases:        sync %s | preprocess %s | write %s | postprocess %s\n",
			st2.Phases.Sync, st2.Phases.Preprocess, st2.Phases.Write, st2.Phases.Postprocess)
		labels := c.Stall().ByLabel()
		keys := make([]string, 0, len(labels))
		for k := range labels {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Printf("  stall split:  ")
		for _, k := range keys {
			fmt.Printf(" %s=%s", k, labels[k])
		}
		fmt.Printf(" (total %s over %d events)\n", c.Stall().Total(), c.Stall().Events())
	}

	img, err := cpr.ReadImage(vtime.NewClock(), node.LocalDisk, st.Path)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nprocess image of %q:\n", img.ProcessName)
	for name, region := range img.Regions {
		fmt.Printf("  region %-12s %10d bytes\n", name, len(region))
	}

	fmt.Println("\nobject database (live CheCL objects per class, restore order):")
	counts := c.ObjectCounts()
	for _, class := range core.RestoreOrder {
		fmt.Printf("  %-10s %d\n", class, counts[class])
	}

	fmt.Println("\nwhat a restart will do:")
	fmt.Println("  1. restore the host image with the conventional CPR backend")
	fmt.Println("  2. fork a fresh API proxy (new OpenCL handle generation)")
	fmt.Println("  3. recreate objects in the order above; re-upload buffer data;")
	fmt.Println("     recompile programs; replay clSetKernelArg; mint dummy events")
}

// storeCmd builds a demonstration store with two checkpoints of the app
// (the second deduplicates against the first) and runs the ls, fsck or
// scrub view over it. The store lives on its own disk with one replica
// attached; -disk-faults N makes that disk fail every Nth operation, so
// the checkpoints only land because of write verification and retries —
// and scrub has real at-rest damage to repair.
func storeCmd(appName string, scale float64, sub string, diskFaults int) {
	app, ok := apps.ByName(appName)
	if !ok {
		fmt.Fprintf(os.Stderr, "checl-inspect: unknown app %q\n", appName)
		os.Exit(2)
	}
	node := proc.NewNode("pc0", hw.TableISpec(), ocl.NVIDIA())
	p := node.Spawn(app.Name)
	c, err := core.Attach(p, core.Options{Incremental: true})
	if err != nil {
		fatal(err)
	}
	defer c.Detach()
	env := &apps.Env{API: c, DeviceMask: ocl.DeviceTypeGPU, Scale: scale}
	if _, err := app.Run(env); err != nil {
		fatal(err)
	}

	var inj *proc.FaultInjector
	ckptDisk := node.LocalDisk
	if diskFaults > 0 {
		inj = proc.NewFaultInjector(proc.DiskFaultPlan{
			Seed:   2026,
			EveryN: diskFaults,
			Kinds: []proc.DiskFaultKind{
				proc.DiskFaultTornWrite,
				proc.DiskFaultLostWrite,
				proc.DiskFaultBitRot,
				proc.DiskFaultEIO,
			},
		})
		ckptDisk = proc.NewFS("ckpt-disk", hw.TableISpec().LocalDisk, proc.WithFault(inj))
	}
	st := store.New(ckptDisk, store.Config{})
	replica := store.New(proc.NewFS("replica-disk", hw.TableISpec().LocalDisk), store.Config{})
	st.AttachReplica(replica, node.Spec.Inter.NIC)
	for i := 0; i < 2; i++ {
		var perr error
		for attempt := 0; attempt < 5; attempt++ {
			if _, perr = c.CheckpointToStore(st, app.Name); perr == nil {
				break
			}
			// A failed Put is a simulated crash: sweep the staging area and
			// take the checkpoint again, exactly as a production opener would.
			if _, rerr := st.Recover(); rerr != nil {
				fatal(rerr)
			}
		}
		if perr != nil {
			fatal(perr)
		}
	}
	if inj != nil {
		fmt.Printf("disk faults: injected %d over %d operations (seed 2026, every %d)\n",
			inj.Injected(), inj.Ops(), diskFaults)
	}

	switch sub {
	case "ls":
		storeLs(st)
	case "fsck":
		storeFsck(node, st)
	case "scrub":
		storeScrub(node, st)
	}
}

// printTransport renders the per-phase proxy traffic on the selected
// transport: total calls, fire-and-forget posts (completed with zero
// round trips), synchronous round trips, and the wire/modelled bytes.
// The checkpoint row is the delta the checkpoint itself added on top of
// the application run (zeroed if a failover swapped the proxy between
// the samples, since client stats are per-connection-generation).
func printTransport(name string, run, after proxy.Stats) {
	row := func(phase string, s proxy.Stats) {
		fmt.Printf("  %-11s %-8s %8d %8d %12d %10.3f MB\n",
			phase, name, s.Calls, s.Posted, s.Calls-s.Posted, float64(s.Bytes)/1e6)
	}
	ckpt := proxy.Stats{
		Calls:  after.Calls - run.Calls,
		Posted: after.Posted - run.Posted,
		Bytes:  after.Bytes - run.Bytes,
	}
	if ckpt.Calls < 0 || ckpt.Bytes < 0 {
		ckpt = proxy.Stats{}
	}
	fmt.Printf("proxy traffic by phase:\n")
	fmt.Printf("  %-11s %-8s %8s %8s %12s %13s\n",
		"PHASE", "TRANSPORT", "CALLS", "POSTED", "ROUNDTRIPS", "BYTES")
	row("run", run)
	row("checkpoint", ckpt)
	fmt.Println()
}

// printDrain summarises a checkpoint's dirty/clean buffer split: what the
// preprocess phase actually copied off the device versus what rode on the
// parent generation's chunks.
func printDrain(st core.CheckpointStats) {
	fmt.Printf("  drained:       %d dirty (%.3f MB copied), %d clean reused (%.3f MB), %d released skipped, %d drain workers\n",
		st.DirtyBuffers, float64(st.DirtyBytes)/1e6,
		st.CleanBuffers, float64(st.CleanBytes)/1e6,
		st.SkippedReleased, st.DrainWorkers)
	if st.Speculative {
		fmt.Printf("  STALL:         %s app-visible | speculated %d (%.3f MB), violated %d, recopied %.3f MB, overlap %s\n",
			st.StallTime, st.SpeculatedBuffers, float64(st.SpeculatedBytes)/1e6,
			st.ViolatedBuffers, float64(st.RecopiedBytes)/1e6, st.Overlap)
	} else {
		fmt.Printf("  STALL:         %s app-visible (stop-drain)\n", st.StallTime)
	}
	if st.EpochAborted != "" {
		fmt.Printf("  epoch aborted: %s\n", st.EpochAborted)
	}
}

func storeLs(st *store.Store) {
	mans, issues := st.Manifests()
	fmt.Printf("checkpoint store on %q: %d manifests, %d jobs, %.3f MB stored\n",
		st.FS().Name(), len(mans), len(st.Jobs()), float64(st.TotalStoredBytes())/1e6)
	for _, iss := range issues {
		fmt.Printf("  UNREADABLE %s: %v\n", iss.ID(), iss.Err)
	}
	byID := make(map[string]store.Manifest, len(mans))
	for _, m := range mans {
		byID[m.ID()] = m
	}
	fmt.Printf("  %-20s %-20s %8s %12s %12s %8s\n", "MANIFEST", "PARENT", "CHUNKS", "SIZE", "DELTA", "DIGEST")
	for _, m := range mans {
		parent := m.Parent
		var pm *store.Manifest
		if p, ok := byID[m.Parent]; ok {
			pm = &p
		}
		if parent == "" {
			parent = "-"
		}
		fmt.Printf("  %-20s %-20s %8d %12d %12d %8s\n",
			m.ID(), parent, len(m.Chunks), m.Size, m.DeltaSize(pm), m.Digest[:8])
	}
}

func storeFsck(node *proc.Node, st *store.Store) {
	rep, err := st.Fsck(node.Clock)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("fsck: %d manifests, %d chunks checked, %d errors\n",
		rep.Manifests, rep.ChunksChecked, len(rep.Errors))
	for _, e := range rep.Errors {
		fmt.Printf("  ERROR %s\n", e)
	}
	if !rep.OK() {
		os.Exit(1)
	}
	fmt.Println("  store is consistent")
}

func storeScrub(node *proc.Node, st *store.Store) {
	rep, err := st.Scrub(node.Clock)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("scrub: %d manifests, %d chunks checked\n", rep.Manifests, rep.ChunksChecked)
	fmt.Printf("  healed:       %d chunks (%.3f MB), %d manifests, %d write-back failures\n",
		rep.Healed.ChunksHealed, float64(rep.Healed.BytesHealed)/1e6,
		rep.Healed.ManifestsHealed, rep.Healed.WritebackFailures)
	fmt.Printf("  quarantined:  %d manifests\n", len(rep.Quarantined))
	for _, f := range rep.Findings {
		fmt.Printf("  FINDING %s\n", f)
	}
	if !rep.OK() {
		os.Exit(1)
	}
	fmt.Println("  store is fully healed")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "checl-inspect: %v\n", err)
	os.Exit(1)
}
