package main

import (
	"fmt"
	"strings"

	"checl/internal/fleet"
)

// fleetCmd runs a bursty fleet-scheduler scenario and renders the
// operator view: per-device utilization, queue-depth samples, migration
// and eviction counters, and the completion-latency histogram.
func fleetCmd(jobs int, seed int64, gpus, cpus, sample int, migration, preemption bool) {
	specs := fleet.Bursty(fleet.TrafficConfig{Seed: seed, Jobs: jobs})
	cfg := fleet.Config{
		Model:       fleet.DefaultCostModel(),
		Migration:   migration,
		Preemption:  preemption,
		SampleEvery: sample,
	}
	f := fleet.New(fleet.DefaultNodes(gpus, cpus), cfg)
	r, err := f.Run(specs)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("fleet: %d jobs over %d gpu + %d cpu nodes (seed %d, migration %v, preemption %v)\n",
		r.Jobs, gpus, cpus, seed, migration, preemption)
	fmt.Printf("  completed:    %d (%d rejected)  makespan %s  throughput %.3f jobs/s\n",
		r.Completed, len(r.Rejected), r.Makespan, r.ThroughputJobsPerSec)
	fmt.Printf("  latency:      mean %s | p50 %s | p90 %s | p99 %s | max %s\n",
		r.MeanLatency, r.P50Latency, r.P90Latency, r.P99Latency, r.MaxLatency)
	fmt.Printf("  queueing:     mean wait %s, peak depth %d\n", r.MeanWait, r.QueuePeak)
	fmt.Printf("  migrations:   %d (%.3f MB moved via live dirty sets)\n",
		r.Migrations, float64(r.MigratedBytes)/1e6)
	fmt.Printf("  preemptions:  %d evictions (%.3f MB parked), %d restores\n",
		r.Evictions, float64(r.EvictedBytes)/1e6, r.Restores)
	if sample > 0 {
		fmt.Printf("  real samples: %d jobs on the core+store path, %d round-trips, %d mismatches\n",
			r.RealJobs, r.RealRoundTrips, r.RealMismatches)
	}

	fmt.Println("\ndevice utilization:")
	for _, d := range r.Devices {
		fmt.Printf("  %-12s %-22s %4d jobs  %s %5.1f%%\n",
			d.Key, d.Device, d.JobsRun, bar(d.Utilization, 30), 100*d.Utilization)
	}

	if len(r.Samples) > 0 {
		peak := 1
		for _, s := range r.Samples {
			if s.Depth > peak {
				peak = s.Depth
			}
		}
		fmt.Println("\nqueue depth at rebalance ticks (p = parked evictees):")
		step := (len(r.Samples) + 19) / 20
		for i := 0; i < len(r.Samples); i += step {
			s := r.Samples[i]
			fmt.Printf("  %10s %s %d", s.At, bar(float64(s.Depth)/float64(peak), 30), s.Depth)
			if s.Parked > 0 {
				fmt.Printf(" (%dp)", s.Parked)
			}
			fmt.Println()
		}
	}

	if h := r.LatencyHistogram(10); len(h) > 0 {
		peak := 1
		for _, b := range h {
			if b.Count > peak {
				peak = b.Count
			}
		}
		fmt.Println("\ncompletion-latency histogram:")
		for _, b := range h {
			fmt.Printf("  <= %10s %s %d\n", b.UpTo, bar(float64(b.Count)/float64(peak), 30), b.Count)
		}
	}
}

func bar(frac float64, width int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(frac*float64(width) + 0.5)
	return "[" + strings.Repeat("#", n) + strings.Repeat(".", width-n) + "]"
}
