package main

import (
	"errors"
	"fmt"

	"checl/internal/core"
	"checl/internal/hw"
	"checl/internal/mpi"
	"checl/internal/ocl"
	"checl/internal/proc"
	"checl/internal/store"
)

// mpiCmd runs a partial-restart demonstration: an epoch-structured MPI
// job (ring exchange + allreduce + coordinated store checkpoint per
// epoch) with sender-side message logging, kills one rank mid-epoch, and
// restores it in place from its per-rank segment of the committed
// generation while the survivors keep running. The output is the operator
// view of the recovery: per-rank progress and log bytes at the instant of
// death, the replay/suppression accounting, and the final log footprint.
func mpiCmd(ranks, epochs, killRank, killOp int) {
	if ranks < 2 {
		fatal(fmt.Errorf("mpi: need at least 2 ranks, got %d", ranks))
	}
	cluster := proc.NewCluster("pc", ranks, hw.TableISpec(), func(int) []*ocl.Vendor {
		return []*ocl.Vendor{ocl.AMD()}
	})
	st := store.New(cluster.NFS, store.Config{})
	const job = "mpijob"

	inj := mpi.NewRankFaultInjector(mpi.RankFaultPlan{
		Seed:  42,
		Kills: []mpi.RankKill{{Rank: killRank, AtOp: killOp}},
	})
	w, err := mpi.NewWorldWithOptions(cluster, ranks, mpi.Options{LogMessages: true, Fault: inj})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("mpi: %d ranks over %d nodes, %d epochs of ring+allreduce+checkpoint into store %q\n",
		ranks, len(cluster.Nodes), epochs, job)
	how := "chosen explicitly"
	if killRank == -1 {
		how = "picked by seed 42"
	}
	fmt.Printf("  fault plan:  kill rank %d at its MPI op %d (victim %s)\n",
		inj.Victims()[0], killOp, how)

	checls := make([]*core.CheCL, ranks)
	body := func(r *mpi.Rank) error {
		rank := r.Rank()
		if checls[rank] == nil {
			c, err := core.Attach(r.Process(), core.Options{})
			if err != nil {
				return err
			}
			plats, _ := c.GetPlatformIDs()
			devs, _ := c.GetDeviceIDs(plats[0], ocl.DeviceTypeAll)
			ctx, err := c.CreateContext(devs[:1])
			if err != nil {
				return err
			}
			q, err := c.CreateCommandQueue(ctx, devs[0], 0)
			if err != nil {
				return err
			}
			buf, err := c.CreateBuffer(ctx, ocl.MemReadWrite, 256<<10, nil)
			if err != nil {
				return err
			}
			state := make([]byte, 256<<10)
			for i := range state {
				state[i] = byte(rank + i)
			}
			if _, err := c.EnqueueWriteBuffer(q, buf, true, 0, state, nil); err != nil {
				return err
			}
			checls[rank] = c
		}
		size := r.Size()
		for e := r.World().Generation(); e < epochs; e++ {
			payload := make([]byte, 4<<10)
			for i := range payload {
				payload[i] = byte(rank*31 + e*7 + i)
			}
			if err := r.Send((rank+1)%size, 1, payload); err != nil {
				return err
			}
			if _, err := r.Recv((rank+size-1)%size, 1); err != nil {
				return err
			}
			if _, err := r.AllreduceSum(float64(rank+1) * float64(e+1)); err != nil {
				return err
			}
			if _, err := r.CoordinatedCheckpointToStore(checls[rank], st, job); err != nil {
				return err
			}
		}
		return nil
	}

	// Mid-death snapshot, captured in the recovery handler while the
	// victim is a corpse and the survivors are parked on it.
	var deadArrivals, deadLogBytes []int64
	var deadStats mpi.LogStats
	var report *mpi.PartialRestore

	err = w.RunWithRecovery(body, func(r *mpi.Rank, k *mpi.RankKilled) error {
		deadArrivals = w.RankArrivals()
		deadLogBytes = w.RankLogBytes()
		deadStats = w.LogStats()
		fmt.Printf("\nrank %d died at its MPI op %d (committed generation %d, manifest %s)\n",
			k.Rank, k.Op, w.Generation(), w.CommittedManifest())
		c, pr, err := w.RestoreRank(st, job, r.Rank(), core.Options{})
		if err != nil {
			return err
		}
		checls[r.Rank()] = c
		report = pr
		return nil
	})
	if err != nil {
		var unsup *mpi.PartialRestoreUnsupported
		if errors.As(err, &unsup) {
			fmt.Printf("\npartial restore unsupported (%s): fall back to RestoreGlobalFromStore\n", unsup.Reason)
		}
		fatal(err)
	}

	fmt.Println("\nper-rank view at the instant of death:")
	fmt.Printf("  %-6s %-10s %-16s %s\n", "rank", "node", "barrier-gens", "outbound-log-bytes")
	for i, r := range w.Ranks() {
		fmt.Printf("  %-6d %-10s %-16d %d\n", i, r.Node().Name, deadArrivals[i], deadLogBytes[i])
	}
	fmt.Printf("  logged while down: %d entries, %d bytes (high water %d entries / %d bytes)\n",
		deadStats.Entries, deadStats.Bytes, deadStats.HighWaterEntries, deadStats.HighWaterBytes)

	fmt.Println("\npartial restore:")
	fmt.Printf("  source:      segment %q of %s (%d of the snapshot's bytes)\n",
		fmt.Sprintf("rank/%05d", report.Rank), report.Manifest, report.SegmentBytes)
	fmt.Printf("  replay:      %d messages, %d bytes re-queued in original send order\n",
		report.ReplayedMessages, report.ReplayedBytes)
	fmt.Printf("  restart:     %s total on the victim's node (object rebuild %s, recompile %s)\n",
		report.RecoveryVtime, report.Restart.Total, report.Restart.Recompile)

	rec := w.RecoveryStats()
	final := w.LogStats()
	fmt.Println("\nworld after recovery:")
	fmt.Printf("  generations: %d committed, final manifest %s\n", w.Generation(), w.CommittedManifest())
	fmt.Printf("  recovery:    %d kill(s), %d partial restore(s), %d duplicate send(s) suppressed\n",
		rec.Kills, rec.PartialRestores, rec.SuppressedSends)
	fmt.Printf("  stall:       survivors parked %s of virtual time across %d waits\n",
		rec.SurvivorStallVtime, rec.SurvivorStalls)
	fmt.Printf("  logs:        %d live entries (%d truncated at commits), high water %d entries / %d bytes\n",
		final.Entries, final.TruncatedEntries, final.HighWaterEntries, final.HighWaterBytes)
}
