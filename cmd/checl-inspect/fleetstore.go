package main

import (
	"bytes"
	"fmt"
	"os"
	"sort"
	"strings"

	"checl/internal/apps"
	"checl/internal/core"
	"checl/internal/hw"
	"checl/internal/ocl"
	"checl/internal/proc"
	"checl/internal/store"
	"checl/internal/vtime"
)

// storeFleetCmd demonstrates the erasure-coded checkpoint fleet: the demo
// app checkpoints twice into a 6-node 4+2 fleet (the second generation
// deduplicates against the first), -node-faults N injects a node-level
// fault every N shard operations while it fills, and the report walks
// the operational story — per-node occupancy, a degraded read with m
// nodes down verified bit-identical, a node replacement brought back to
// full redundancy by Rebuild, and the cumulative self-heal ledger.
func storeFleetCmd(appName string, scale float64, nodeFaults int) {
	app, ok := apps.ByName(appName)
	if !ok {
		fmt.Fprintf(os.Stderr, "checl-inspect: unknown app %q\n", appName)
		os.Exit(2)
	}
	node := proc.NewNode("pc0", hw.TableISpec(), ocl.NVIDIA())
	p := node.Spawn(app.Name)
	c, err := core.Attach(p, core.Options{Incremental: true})
	if err != nil {
		fatal(err)
	}
	defer c.Detach()
	env := &apps.Env{API: c, DeviceMask: ocl.DeviceTypeGPU, Scale: scale}
	if _, err := app.Run(env); err != nil {
		fatal(err)
	}

	nodes := make([]store.FleetNode, 6)
	states := make([]*proc.NodeState, 6)
	for i := range nodes {
		name := fmt.Sprintf("ckpt-%02d", i)
		fs := proc.NewFS(name, hw.TableISpec().LocalDisk)
		states[i] = proc.NewNodeState(name)
		fs.SetNodeState(states[i])
		nodes[i] = store.FleetNode{Name: name, FS: fs}
	}
	fl, err := store.NewFleet(nodes, store.FleetConfig{})
	if err != nil {
		fatal(err)
	}
	var inj *proc.NodeFaultInjector
	if nodeFaults > 0 {
		inj = proc.NewNodeFaultInjector(proc.NodeFaultPlan{
			Seed: 2026, EveryN: nodeFaults, ReviveAfter: 50,
			MaxDown: fl.Config().ParityShards,
		})
		fl.AttachFaults(inj)
	}

	var ckpt core.CheckpointStats
	for i := 0; i < 2; i++ {
		var perr error
		for attempt := 0; attempt < 5; attempt++ {
			if ckpt, perr = c.CheckpointToStore(fl, app.Name); perr == nil {
				break
			}
			if _, rerr := fl.Rebuild(vtime.NewClock()); rerr != nil {
				fatal(rerr)
			}
		}
		if perr != nil {
			fatal(perr)
		}
	}
	cfg := fl.Config()
	fmt.Printf("erasure-coded checkpoint fleet %q (app %s, 2 generations)\n", fl.Name(), app.Name)
	fmt.Printf("  coding:        %d data + %d parity shards per chunk, %.2fx storage overhead\n",
		cfg.DataShards, cfg.ParityShards, float64(cfg.DataShards+cfg.ParityShards)/float64(cfg.DataShards))
	if put := ckpt.StorePut; put != nil {
		fmt.Printf("  generation 2:  %d chunks, %d new (%.3f MB new data) — dedup against generation 1\n",
			put.TotalChunks, put.NewChunks, float64(put.NewBytes)/1e6)
	}
	if inj != nil {
		fmt.Printf("  node faults:   %d injected over %d shard ops (seed 2026, every %d); down now: %v\n",
			inj.Injected(), inj.Ops(), nodeFaults, inj.Down())
	}

	fmt.Println("  per-node occupancy:")
	total := int64(0)
	for _, name := range fl.Nodes() {
		st, _ := fl.NodeStore(name)
		shards := 0
		for _, path := range st.FS().List() {
			if strings.Contains(path, "/shards/") {
				shards++
			}
		}
		fmt.Printf("    %-9s %6d shard files  %8.3f MB\n", name, shards, float64(st.TotalStoredBytes())/1e6)
		total += st.TotalStoredBytes()
	}
	fmt.Printf("    %-9s %6s            %8.3f MB\n", "total", "", float64(total)/1e6)

	// Degraded read: any m nodes down, the checkpoint must still restore.
	clock := vtime.NewClock()
	healthy, _, err := fl.Get(clock, app.Name)
	if err != nil {
		fatal(err)
	}
	for i := 0; i < cfg.ParityShards; i++ {
		states[i].SetDown(true)
	}
	sw := vtime.NewStopwatch(clock)
	degraded, man, err := fl.Get(clock, app.Name)
	if err != nil {
		fatal(fmt.Errorf("degraded read with %d nodes down: %w", cfg.ParityShards, err))
	}
	if !bytes.Equal(degraded, healthy) {
		fatal(fmt.Errorf("degraded read of %s is not bit-identical", man.ID()))
	}
	fmt.Printf("  degraded read: %s with %d nodes down: bit-identical, %s\n",
		man.ID(), cfg.ParityShards, sw.Elapsed())
	for i := 0; i < cfg.ParityShards; i++ {
		states[i].SetDown(false)
	}

	// Replace a node with an empty one and rebuild it.
	victim := fl.Nodes()[0]
	freshFS := proc.NewFS(victim, hw.TableISpec().LocalDisk)
	freshNS := proc.NewNodeState(victim)
	freshFS.SetNodeState(freshNS)
	if err := fl.ReplaceNode(victim, freshFS); err != nil {
		fatal(err)
	}
	if inj != nil {
		inj.Register(victim, freshFS)
	}
	rst, err := fl.Rebuild(clock)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("  rebuild:       replaced %s; %d shards re-coded (%.3f MB) across %d chunks in %s (%d paced batches)\n",
		victim, rst.ShardsRebuilt, float64(rst.BytesRebuilt)/1e6, rst.ChunksScanned, rst.Time, rst.Batches)

	heals := fl.Heals()
	fmt.Printf("  heal ledger:   %d shards (%.3f MB) re-coded, %d manifest copies re-published\n",
		heals.ShardsHealed, float64(heals.ShardBytesHealed)/1e6, heals.ManifestsHealed)

	jobs := fl.Jobs()
	sort.Strings(jobs)
	fmt.Printf("  jobs:          %v\n", jobs)
}
