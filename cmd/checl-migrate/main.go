// checl-migrate demonstrates process migration of an OpenCL application:
// an app starts under CheCL on a source node (optionally with a different
// GPU vendor than the destination), is checkpointed, and resumes on the
// destination node — or switches compute device kind on the same node
// (runtime processor selection via a RAM-disk checkpoint).
//
// Usage:
//
//	checl-migrate [-app name] [-from nvidia|amd] [-to nvidia|amd] [-procsel]
package main

import (
	"flag"
	"fmt"
	"os"

	"checl/internal/apps"
	"checl/internal/core"
	"checl/internal/hw"
	"checl/internal/ocl"
	"checl/internal/proc"
)

func vendorByName(name string) (*ocl.Vendor, string) {
	switch name {
	case "nvidia":
		return ocl.NVIDIA(), "NVIDIA Corporation"
	case "amd":
		return ocl.AMD(), "Advanced Micro Devices, Inc."
	default:
		fmt.Fprintf(os.Stderr, "checl-migrate: unknown vendor %q (nvidia|amd)\n", name)
		os.Exit(2)
		return nil, ""
	}
}

func main() {
	appName := flag.String("app", "oclVectorAdd", "application to migrate")
	from := flag.String("from", "nvidia", "source node vendor: nvidia or amd")
	to := flag.String("to", "amd", "destination node vendor: nvidia or amd")
	procsel := flag.Bool("procsel", false, "demonstrate GPU<->CPU runtime processor selection on one AMD node")
	scale := flag.Float64("scale", 1.0, "problem-size multiplier")
	flag.Parse()

	app, ok := apps.ByName(*appName)
	if !ok {
		fmt.Fprintf(os.Stderr, "checl-migrate: unknown app %q\n", *appName)
		os.Exit(2)
	}

	if *procsel {
		runProcSel(app, *scale)
		return
	}

	srcVendor, srcName := vendorByName(*from)
	dstVendor, dstName := vendorByName(*to)
	cluster := proc.NewCluster("pc", 2, hw.TableISpec(), func(i int) []*ocl.Vendor {
		if i == 0 {
			return []*ocl.Vendor{srcVendor}
		}
		return []*ocl.Vendor{dstVendor}
	})
	src, dst := cluster.Nodes[0], cluster.Nodes[1]

	p := src.Spawn(app.Name)
	c, err := core.Attach(p, core.Options{VendorName: srcName})
	if err != nil {
		fatal(err)
	}
	env := &apps.Env{API: c, DeviceMask: ocl.DeviceTypeAll, Verify: true, Scale: *scale}
	if _, err := app.Run(env); err != nil {
		fatal(err)
	}
	fmt.Printf("%s ran on %s (%s OpenCL)\n", app.Name, src.Name, *from)

	rc, ms, err := core.Migrate(c, cluster.NFS, app.Name+".ckpt", dst,
		core.Options{VendorName: dstName})
	if err != nil {
		fatal(err)
	}
	defer rc.Detach()
	fmt.Printf("migrated %s -> %s over NFS\n", src.Name, dst.Name)
	fmt.Printf("  checkpoint: %s (file %.2f MB on %s)\n",
		ms.Checkpoint.Phases.Total(), float64(ms.Checkpoint.FileSize)/1e6, ms.Checkpoint.FSName)
	fmt.Printf("  restart:    %s (recompile %s)\n", ms.Restart.Total, ms.Restart.Recompile)
	fmt.Printf("  total Tm:   %s\n", ms.Total)
	fmt.Printf("live objects after restore: %v\n", rc.ObjectCounts())
}

func runProcSel(app apps.App, scale float64) {
	node := proc.NewNode("pc0", hw.TableISpec(), ocl.AMD())
	p := node.Spawn(app.Name)
	c, err := core.Attach(p, core.Options{VendorName: "Advanced Micro Devices, Inc."})
	if err != nil {
		fatal(err)
	}
	env := &apps.Env{API: c, DeviceMask: ocl.DeviceTypeGPU, Verify: true, Scale: scale}
	if _, err := app.Run(env); err != nil {
		fatal(err)
	}
	fmt.Printf("%s ran on the Radeon HD5870 (GPU)\n", app.Name)

	rc, ms, err := core.SelectProcessor(c, hw.DeviceCPU)
	if err != nil {
		fatal(err)
	}
	defer rc.Detach()
	fmt.Printf("switched compute device GPU -> CPU via a %s checkpoint in %s\n",
		ms.Checkpoint.FSName, ms.Total)
	env2 := &apps.Env{API: rc, DeviceMask: ocl.DeviceTypeCPU, Verify: true, Scale: scale}
	if _, err := app.Run(env2); err != nil {
		fatal(err)
	}
	fmt.Printf("%s re-ran on the Core i7 (CPU device) with the same process state\n", app.Name)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "checl-migrate: %v\n", err)
	os.Exit(1)
}
