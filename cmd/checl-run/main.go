// checl-run executes one benchmark application, natively or under CheCL,
// optionally taking a mid-run checkpoint and restarting from it — a
// command-line demonstration of the full CheCL lifecycle.
//
// Usage:
//
//	checl-run [-config key] [-native] [-checkpoint] [-mode delayed] [-list] [app]
package main

import (
	"flag"
	"fmt"
	"os"

	"checl/internal/apps"
	"checl/internal/core"
	"checl/internal/harness"
	"checl/internal/hw"
	"checl/internal/ocl"
	"checl/internal/proc"
	"checl/internal/vtime"
)

func main() {
	configKey := flag.String("config", "nvidia-gpu", "configuration: nvidia-gpu, amd-gpu, amd-cpu")
	native := flag.Bool("native", false, "run against the vendor OpenCL directly (no CheCL)")
	checkpoint := flag.Bool("checkpoint", false, "signal a checkpoint during the run and restart from it")
	mode := flag.String("mode", "immediate", "checkpoint mode: immediate or delayed")
	scale := flag.Float64("scale", 1.0, "problem-size multiplier")
	list := flag.Bool("list", false, "list available applications")
	flag.Parse()

	if *list {
		for _, a := range apps.All() {
			fmt.Printf("%-26s %s\n", a.Name, a.Suite)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: checl-run [flags] <app>   (try -list)")
		os.Exit(2)
	}
	app, ok := apps.ByName(flag.Arg(0))
	if !ok {
		fmt.Fprintf(os.Stderr, "checl-run: unknown app %q (try -list)\n", flag.Arg(0))
		os.Exit(2)
	}
	cfg, ok := harness.ConfigByKey(*configKey)
	if !ok {
		fmt.Fprintf(os.Stderr, "checl-run: unknown config %q\n", *configKey)
		os.Exit(2)
	}

	node := proc.NewNode("pc0", hw.TableISpec(), cfg.Vendor())
	p := node.Spawn(app.Name)

	if *native {
		rt := ocl.NewRuntime(node.Vendors[0], node.Spec, node.Clock)
		p.MapDevice()
		env := &apps.Env{API: rt, DeviceMask: cfg.Mask, Verify: true, Scale: *scale}
		sw := vtime.NewStopwatch(node.Clock)
		res, err := app.Run(env)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s (native, %s): %s virtual time, %d kernel launches, verified=%v\n",
			app.Name, cfg.Name, sw.Elapsed(), res.Launches, res.Verified)
		return
	}

	opts := core.Options{
		VendorName: cfg.VendorName,
		CkptFS:     node.LocalDisk,
		CkptPath:   app.Name + ".ckpt",
	}
	if *mode == "delayed" {
		opts.Mode = core.Delayed
	}
	c, err := core.Attach(p, opts)
	if err != nil {
		fatal(err)
	}
	env := &apps.Env{API: c, DeviceMask: cfg.Mask, Verify: true, Scale: *scale}
	if *checkpoint {
		fired := false
		env.AfterLaunch = func(q ocl.CommandQueue) error {
			if !fired {
				fired = true
				p.Signal(proc.SIGUSR1) // delivered at the next API call
			}
			return nil
		}
	}
	sw := vtime.NewStopwatch(node.Clock)
	res, err := app.Run(env)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s (CheCL %s, %s): %s virtual time, %d kernel launches, verified=%v\n",
		app.Name, opts.Mode, cfg.Name, sw.Elapsed(), res.Launches, res.Verified)

	if st := c.LastCheckpoint(); st != nil {
		fmt.Printf("checkpoint: file=%s size=%.2f MB sync=%s preprocess=%s write=%s postprocess=%s\n",
			st.Path, float64(st.FileSize)/1e6,
			st.Phases.Sync, st.Phases.Preprocess, st.Phases.Write, st.Phases.Postprocess)
		// Restart the snapshot to prove it is valid.
		c.Proxy().Kill()
		c.App().Kill()
		rc, rst, err := core.Restore(node, node.LocalDisk, st.Path,
			core.Options{VendorName: cfg.VendorName})
		if err != nil {
			fatal(err)
		}
		defer rc.Detach()
		fmt.Printf("restart: total=%s recompile=%s objects=%v\n", rst.Total, rst.Recompile, rc.ObjectCounts())
	} else if *checkpoint {
		fmt.Println("checkpoint requested but never fired (no kernel launch?)")
	}
	c.Detach()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "checl-run: %v\n", err)
	os.Exit(1)
}
