// checl-bench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	checl-bench [-scale f] [-config key] [table1|fig4|fig5|fig6|fig7|fig8|ablations|all]...
//
// Each experiment prints the text equivalent of the corresponding table or
// figure of the paper. -scale shrinks or grows every benchmark's problem
// size (1.0 = the repository defaults); -config restricts the per-
// configuration experiments to one of nvidia-gpu, amd-gpu, amd-cpu.
package main

import (
	"flag"
	"fmt"
	"os"

	"checl/internal/harness"
)

func main() {
	scale := flag.Float64("scale", 1.0, "problem-size multiplier for every benchmark")
	configKey := flag.String("config", "", "restrict to one configuration (nvidia-gpu, amd-gpu, amd-cpu)")
	flag.Parse()

	experiments := flag.Args()
	if len(experiments) == 0 {
		experiments = []string{"all"}
	}
	want := map[string]bool{}
	for _, e := range experiments {
		if e == "all" {
			for _, k := range []string{"table1", "fig4", "fig5", "fig6", "fig7", "fig8", "ablations"} {
				want[k] = true
			}
			continue
		}
		want[e] = true
	}

	configs := harness.Configs()
	if *configKey != "" {
		cfg, ok := harness.ConfigByKey(*configKey)
		if !ok {
			fmt.Fprintf(os.Stderr, "checl-bench: unknown config %q\n", *configKey)
			os.Exit(2)
		}
		configs = []harness.Config{cfg}
	}

	out := os.Stdout
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "checl-bench: %v\n", err)
		os.Exit(1)
	}

	if want["table1"] {
		harness.Rule(out, "Table I")
		harness.RenderTable1(out)
	}
	if want["fig4"] {
		for _, cfg := range configs {
			harness.Rule(out, "Figure 4 — "+cfg.Name)
			rows, sum, err := harness.Fig4(cfg, *scale)
			if err != nil {
				fail(err)
			}
			harness.RenderFig4(out, rows, sum)
		}
	}
	if want["fig5"] {
		for _, cfg := range configs {
			harness.Rule(out, "Figure 5 — "+cfg.Name)
			res, err := harness.Fig5(cfg, *scale)
			if err != nil {
				fail(err)
			}
			harness.RenderFig5(out, res)
		}
	}
	if want["fig6"] {
		harness.Rule(out, "Figure 6 — MPI MD checkpointing")
		rows, err := harness.Fig6([]float64{0.5 * *scale, 1 * *scale, 2 * *scale}, []int{1, 2, 4})
		if err != nil {
			fail(err)
		}
		harness.RenderFig6(out, rows)
	}
	if want["fig7"] {
		for _, cfg := range configs {
			harness.Rule(out, "Figure 7 — "+cfg.Name)
			rows, err := harness.Fig7(cfg, *scale)
			if err != nil {
				fail(err)
			}
			harness.RenderFig7(out, cfg, rows)
		}
	}
	if want["ablations"] {
		harness.Rule(out, "Ablations")
		results, err := harness.Ablations(*scale)
		if err != nil {
			fail(err)
		}
		harness.RenderAblations(out, results)
	}
	if want["fig8"] {
		for _, cfg := range configs {
			harness.Rule(out, "Figure 8 — "+cfg.Name)
			res, err := harness.Fig8(cfg, *scale)
			if err != nil {
				fail(err)
			}
			harness.RenderFig8(out, res)
		}
	}
}
