// Root-level benchmarks: one per table/figure of the paper's evaluation,
// plus ablations of the design decisions called out in DESIGN.md.
//
// The benchmarks run the same experiment drivers as cmd/checl-bench at a
// reduced problem scale (benchScale) and surface the headline quantities
// as testing.B custom metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates the whole evaluation and prints, e.g., the average CheCL
// runtime overhead per configuration (Fig. 4), the checkpoint-time /
// file-size correlation (Fig. 5), and the migration-prediction error
// (Fig. 8).
package checl_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"checl/internal/apps"
	"checl/internal/core"
	"checl/internal/fleet"
	"checl/internal/harness"
	"checl/internal/hw"
	"checl/internal/ipc"
	"checl/internal/mpi"
	"checl/internal/ocl"
	"checl/internal/proc"
	"checl/internal/proxy"
	"checl/internal/store"
	"checl/internal/vtime"
)

const benchScale = 0.2

// BenchmarkTable1Systems exercises the Table I hardware models and
// reports the headline bandwidths as metrics.
func BenchmarkTable1Systems(b *testing.B) {
	var spec hw.SystemSpec
	for i := 0; i < b.N; i++ {
		spec = hw.TableISpec()
		_ = spec.LocalDisk.WriteTime(32 << 20)
		_ = spec.Inter.PCIeHtoD.Transfer(32 << 20)
	}
	b.ReportMetric(float64(spec.Inter.PCIeHtoD)/1e9, "PCIe-HtoD-GB/s")
	b.ReportMetric(float64(spec.Inter.PCIeDtoH)/1e9, "PCIe-DtoH-GB/s")
	b.ReportMetric(float64(spec.LocalDisk.Write)/1e6, "disk-write-MB/s")
	b.ReportMetric(float64(spec.NFS.Write)/1e6, "nfs-write-MB/s")
	b.ReportMetric(float64(spec.RAMDisk.Write)/1e6, "ramdisk-write-MB/s")
}

// BenchmarkFig4RuntimeOverhead regenerates Fig. 4 for each configuration
// and reports the average CheCL runtime overhead (paper: 10.1% NVIDIA GPU,
// 19.0% AMD GPU, 12.2% AMD CPU).
func BenchmarkFig4RuntimeOverhead(b *testing.B) {
	for _, cfg := range harness.Configs() {
		cfg := cfg
		b.Run(cfg.Key, func(b *testing.B) {
			var sum harness.Fig4Summary
			for i := 0; i < b.N; i++ {
				var err error
				_, sum, err = harness.Fig4(cfg, benchScale)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(sum.AverageOverhead, "avg-overhead-%")
			b.ReportMetric(float64(sum.Apps), "benchmarks")
			b.ReportMetric(sum.InitOverhead.Seconds()*1e3, "init-ms")
		})
	}
}

// BenchmarkFig5CheckpointOverheads regenerates Fig. 5 per configuration
// and reports the checkpoint-time vs file-size correlation (paper: 0.99).
func BenchmarkFig5CheckpointOverheads(b *testing.B) {
	for _, cfg := range harness.Configs() {
		cfg := cfg
		b.Run(cfg.Key, func(b *testing.B) {
			var res harness.Fig5Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = harness.Fig5(cfg, benchScale)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.SizeTimeCorrelation, "corr-size-time")
			var post, total float64
			for _, r := range res.Rows {
				post += r.Postprocess.Seconds()
				total += r.Total().Seconds()
			}
			if total > 0 {
				b.ReportMetric(100*post/total, "postprocess-%")
			}
		})
	}
}

// BenchmarkFig6MPICheckpoint regenerates the Fig. 6 sweep and reports how
// checkpoint time scales with problem size and node count.
func BenchmarkFig6MPICheckpoint(b *testing.B) {
	var rows []harness.Fig6Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = harness.Fig6([]float64{0.25, 0.5, 1}, []int{1, 2, 4})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.CheckpointTime.Seconds()*1e3,
			fmt.Sprintf("scale%.2f-nodes%d-ms", r.ProblemScale, r.Nodes))
	}
}

// BenchmarkFig7RestartBreakdown regenerates Fig. 7 per configuration and
// reports the share of restart time spent recreating cl_mem and
// cl_program objects (the paper's dominant classes).
func BenchmarkFig7RestartBreakdown(b *testing.B) {
	for _, cfg := range harness.Configs() {
		cfg := cfg
		b.Run(cfg.Key, func(b *testing.B) {
			var rows []harness.Fig7Row
			for i := 0; i < b.N; i++ {
				var err error
				rows, err = harness.Fig7(cfg, benchScale)
				if err != nil {
					b.Fatal(err)
				}
			}
			var mem, prog, total float64
			var s3dProg float64
			for _, r := range rows {
				mem += r.PerClass["mem"].Seconds()
				prog += r.PerClass["prog"].Seconds()
				total += r.Total.Seconds()
				if r.App == "S3D" {
					s3dProg = r.PerClass["prog"].Seconds()
				}
			}
			if total > 0 {
				b.ReportMetric(100*(mem+prog)/total, "mem+prog-%")
			}
			b.ReportMetric(s3dProg*1e3, "S3D-recompile-ms")
		})
	}
}

// BenchmarkFig8MigrationPrediction regenerates Fig. 8 per configuration
// and reports the fitted model parameters and the prediction error.
func BenchmarkFig8MigrationPrediction(b *testing.B) {
	for _, cfg := range harness.Configs() {
		cfg := cfg
		b.Run(cfg.Key, func(b *testing.B) {
			var res harness.Fig8Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = harness.Fig8(cfg, benchScale)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.MAPE, "MAPE-%")
			b.ReportMetric(res.Model.Alpha*1e6, "alpha-s/MB")
			b.ReportMetric(res.Model.Beta*1e3, "beta-ms")
		})
	}
}

// ---- ablation benchmarks (DESIGN.md §5) ----

// benchCheCLApp attaches CheCL on a fresh NVIDIA node and runs the app.
func benchCheCLApp(b *testing.B, appName string, opts core.Options) (*proc.Node, *core.CheCL, apps.App) {
	b.Helper()
	node := proc.NewNode("bench", hw.TableISpec(), ocl.NVIDIA())
	p := node.Spawn(appName)
	c, err := core.Attach(p, opts)
	if err != nil {
		b.Fatal(err)
	}
	app, ok := apps.ByName(appName)
	if !ok {
		b.Fatalf("unknown app %s", appName)
	}
	env := &apps.Env{API: c, DeviceMask: ocl.DeviceTypeGPU, Scale: benchScale}
	if _, err := app.Run(env); err != nil {
		b.Fatal(err)
	}
	return node, c, app
}

// BenchmarkAblationCheckpointMode contrasts the immediate and delayed
// checkpoint modes. A 16 MB asynchronous transfer is in flight when the
// checkpoint signal arrives: the immediate mode forces synchronisation
// and pays its full remaining time in the checkpoint's sync phase, while
// the delayed mode postpones the checkpoint to the application's own
// clFinish, after which the queue is already drained (§III-C).
func BenchmarkAblationCheckpointMode(b *testing.B) {
	for _, mode := range []core.Mode{core.Immediate, core.Delayed} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			var sync vtime.Duration
			for i := 0; i < b.N; i++ {
				node := proc.NewNode("bench", hw.TableISpec(), ocl.NVIDIA())
				p := node.Spawn("async-writer")
				c, err := core.Attach(p, core.Options{
					Mode: mode, CkptFS: node.RAMDisk, CkptPath: "m.ckpt",
				})
				if err != nil {
					b.Fatal(err)
				}
				plats, _ := c.GetPlatformIDs()
				devs, _ := c.GetDeviceIDs(plats[0], ocl.DeviceTypeGPU)
				ctx, _ := c.CreateContext(devs)
				q, _ := c.CreateCommandQueue(ctx, devs[0], 0)
				m, err := c.CreateBuffer(ctx, ocl.MemReadWrite, 16<<20, nil)
				if err != nil {
					b.Fatal(err)
				}
				// Non-blocking 16 MB write: ~3 ms of queue time at PCIe
				// bandwidth. The signal arrives while it is in flight.
				if _, err := c.EnqueueWriteBuffer(q, m, false, 0, make([]byte, 16<<20), nil); err != nil {
					b.Fatal(err)
				}
				p.Signal(proc.SIGUSR1)
				// An unrelated API call (a query) follows the signal, then
				// the application's own synchronisation point.
				if _, err := c.GetDeviceInfo(devs[0]); err != nil {
					b.Fatal(err)
				}
				if err := c.Finish(q); err != nil {
					b.Fatal(err)
				}
				st := c.LastCheckpoint()
				if st == nil {
					b.Fatal("checkpoint did not fire")
				}
				sync = st.Phases.Sync
				c.Detach()
			}
			b.ReportMetric(sync.Seconds()*1e3, "sync-ms")
		})
	}
}

// BenchmarkAblationDestructiveVsProxy contrasts CheCL's keep-objects-alive
// design against the CheCUDA-style delete-and-recreate approach: the
// postprocessing phase explodes in destructive mode (§IV-B).
func BenchmarkAblationDestructiveVsProxy(b *testing.B) {
	for _, destructive := range []bool{false, true} {
		destructive := destructive
		name := "api-proxy"
		if destructive {
			name = "checuda-destructive"
		}
		b.Run(name, func(b *testing.B) {
			var post vtime.Duration
			for i := 0; i < b.N; i++ {
				node, c, _ := benchCheCLApp(b, "oclMatrixMul", core.Options{Destructive: destructive})
				st, err := c.Checkpoint(node.LocalDisk, "d.ckpt")
				if err != nil {
					b.Fatal(err)
				}
				post = st.Phases.Postprocess
				c.Detach()
			}
			b.ReportMetric(post.Seconds()*1e3, "postprocess-ms")
		})
	}
}

// BenchmarkAblationIncremental contrasts full vs incremental object
// checkpointing (the paper's future-work feature): the second checkpoint
// after an idle period stages nothing in incremental mode.
func BenchmarkAblationIncremental(b *testing.B) {
	for _, inc := range []bool{false, true} {
		inc := inc
		name := "full"
		if inc {
			name = "incremental"
		}
		b.Run(name, func(b *testing.B) {
			var second vtime.Duration
			for i := 0; i < b.N; i++ {
				node, c, _ := benchCheCLApp(b, "oclVectorAdd", core.Options{Incremental: inc})
				if _, err := c.Checkpoint(node.LocalDisk, "i1.ckpt"); err != nil {
					b.Fatal(err)
				}
				st, err := c.Checkpoint(node.LocalDisk, "i2.ckpt")
				if err != nil {
					b.Fatal(err)
				}
				second = st.Phases.Preprocess
				c.Detach()
			}
			b.ReportMetric(second.Seconds()*1e6, "second-ckpt-preprocess-us")
		})
	}
}

// BenchmarkAblationStorageTarget contrasts checkpoint targets: local disk
// vs NFS vs RAM disk (the RAM disk enables cheap runtime processor
// selection, §IV-C).
func BenchmarkAblationStorageTarget(b *testing.B) {
	targets := []struct {
		name string
		fs   func(n *proc.Node) *proc.FS
	}{
		{"local-disk", func(n *proc.Node) *proc.FS { return n.LocalDisk }},
		{"ramdisk", func(n *proc.Node) *proc.FS { return n.RAMDisk }},
		{"nfs", func(n *proc.Node) *proc.FS {
			if n.NFS == nil {
				n.NFS = proc.NewFS("nfs", n.Spec.NFS)
			}
			return n.NFS
		}},
	}
	for _, tgt := range targets {
		tgt := tgt
		b.Run(tgt.name, func(b *testing.B) {
			var write vtime.Duration
			for i := 0; i < b.N; i++ {
				node, c, _ := benchCheCLApp(b, "oclFDTD3d", core.Options{})
				st, err := c.Checkpoint(tgt.fs(node), "s.ckpt")
				if err != nil {
					b.Fatal(err)
				}
				write = st.Phases.Write
				c.Detach()
			}
			b.ReportMetric(write.Seconds()*1e3, "write-ms")
		})
	}
}

// BenchmarkStoreDedup takes a 5-checkpoint sequence of one app into the
// content-addressed store and reports how well checkpoints 2..5 of the
// unchanged app deduplicate: the aggregate dedup ratio, the new bytes the
// whole sequence uploaded, and what flat files would have written instead.
func BenchmarkStoreDedup(b *testing.B) {
	const checkpoints = 5
	var totalBytes, newBytes int64
	for i := 0; i < b.N; i++ {
		node, c, _ := benchCheCLApp(b, "oclVectorAdd", core.Options{Incremental: true})
		st := store.New(node.LocalDisk, store.Config{
			MinChunk: 1 << 10, AvgChunk: 4 << 10, MaxChunk: 16 << 10,
		})
		totalBytes, newBytes = 0, 0
		for j := 0; j < checkpoints; j++ {
			cst, err := c.CheckpointToStore(st, "bench")
			if err != nil {
				b.Fatal(err)
			}
			totalBytes += cst.StorePut.TotalBytes
			newBytes += cst.StorePut.NewBytes
		}
		c.Detach()
	}
	b.ReportMetric(1-float64(newBytes)/float64(totalBytes), "dedup-ratio")
	b.ReportMetric(float64(newBytes)/1e6, "new-MB-written")
	b.ReportMetric(float64(totalBytes)/1e6, "flat-MB-equivalent")
}

// benchFleet builds an n-node erasure-coded checkpoint fleet with node
// states attached, fine chunking, for the erasure benchmarks.
func benchFleet(b *testing.B, n int) (*store.Fleet, []*proc.NodeState) {
	b.Helper()
	nodes := make([]store.FleetNode, n)
	states := make([]*proc.NodeState, n)
	for i := range nodes {
		name := fmt.Sprintf("ck-%02d", i)
		fs := proc.NewFS(name, hw.TableISpec().LocalDisk)
		states[i] = proc.NewNodeState(name)
		fs.SetNodeState(states[i])
		nodes[i] = store.FleetNode{Name: name, FS: fs}
	}
	fl, err := store.NewFleet(nodes, store.FleetConfig{
		Store: store.Config{MinChunk: 1 << 10, AvgChunk: 4 << 10, MaxChunk: 16 << 10},
	})
	if err != nil {
		b.Fatal(err)
	}
	return fl, states
}

// BenchmarkErasureFleet is the PR 9 acceptance experiment: the
// erasure-coded sharded checkpoint fleet against the single-store +
// full-replica baseline. Arms report degraded-read latency (any m nodes
// down, restore still bit-identical), rebuild throughput after a node
// replacement, the cross-job dedup ratio over a population of similar
// jobs, and the physical storage overhead against PR 4's replication.
func BenchmarkErasureFleet(b *testing.B) {
	const payloadMB = 4
	mkPayload := func(seed int64) []byte {
		p := make([]byte, payloadMB<<20)
		rand.New(rand.NewSource(seed)).Read(p)
		return p
	}

	b.Run("degraded-read", func(b *testing.B) {
		var healthyMS, degradedMS float64
		for i := 0; i < b.N; i++ {
			fl, states := benchFleet(b, 6)
			clock := vtime.NewClock()
			data := mkPayload(1)
			if _, _, err := fl.Put(clock, "bench", data); err != nil {
				b.Fatal(err)
			}
			sw := vtime.NewStopwatch(clock)
			got, _, err := fl.Get(clock, "bench")
			if err != nil {
				b.Fatal(err)
			}
			healthyMS = sw.Elapsed().Seconds() * 1e3
			states[0].SetDown(true)
			states[3].SetDown(true)
			sw = vtime.NewStopwatch(clock)
			deg, _, err := fl.Get(clock, "bench")
			if err != nil {
				b.Fatal(err)
			}
			degradedMS = sw.Elapsed().Seconds() * 1e3
			if !bytes.Equal(got, data) || !bytes.Equal(deg, data) {
				b.Fatal("read not bit-identical")
			}
		}
		b.ReportMetric(healthyMS, "healthy-read-ms")
		b.ReportMetric(degradedMS, "degraded-read-ms")
		b.ReportMetric(degradedMS/healthyMS, "degraded-slowdown-x")
	})

	b.Run("rebuild", func(b *testing.B) {
		var st store.RebuildStats
		for i := 0; i < b.N; i++ {
			fl, _ := benchFleet(b, 6)
			clock := vtime.NewClock()
			if _, _, err := fl.Put(clock, "bench", mkPayload(2)); err != nil {
				b.Fatal(err)
			}
			victim := fl.Nodes()[0]
			if err := fl.ReplaceNode(victim, proc.NewFS(victim, hw.TableISpec().LocalDisk)); err != nil {
				b.Fatal(err)
			}
			var err error
			if st, err = fl.Rebuild(clock); err != nil {
				b.Fatal(err)
			}
			if st.ShardsRebuilt == 0 {
				b.Fatal("rebuild re-coded nothing")
			}
		}
		b.ReportMetric(float64(st.BytesRebuilt)/1e6, "rebuilt-MB")
		b.ReportMetric(st.Time.Seconds()*1e3, "rebuild-ms")
		b.ReportMetric(float64(st.BytesRebuilt)/1e6/st.Time.Seconds(), "rebuild-MB/s")
	})

	b.Run("cross-job-dedup", func(b *testing.B) {
		const jobs = 100
		var ratio float64
		for i := 0; i < b.N; i++ {
			fl, _ := benchFleet(b, 8)
			clock := vtime.NewClock()
			base := mkPayload(3)
			var logical int64
			for j := 0; j < jobs; j++ {
				tail := make([]byte, 8<<10)
				rand.New(rand.NewSource(int64(500 + j))).Read(tail)
				p := append(append([]byte(nil), base...), tail...)
				logical += int64(len(p))
				if _, _, err := fl.Put(clock, fmt.Sprintf("job-%03d", j), p); err != nil {
					b.Fatal(err)
				}
			}
			ratio = float64(logical) / float64(fl.TotalStoredBytes())
		}
		b.ReportMetric(float64(jobs), "jobs")
		b.ReportMetric(ratio, "dedup-ratio-x")
	})

	b.Run("overhead-vs-replica", func(b *testing.B) {
		var fleetX, replicaX float64
		for i := 0; i < b.N; i++ {
			data := mkPayload(4)
			clock := vtime.NewClock()

			fl, _ := benchFleet(b, 6)
			if _, _, err := fl.Put(clock, "bench", data); err != nil {
				b.Fatal(err)
			}
			fleetX = float64(fl.TotalStoredBytes()) / float64(len(data))

			cfg := store.Config{MinChunk: 1 << 10, AvgChunk: 4 << 10, MaxChunk: 16 << 10}
			st := store.New(proc.NewFS("primary", hw.TableISpec().LocalDisk), cfg)
			replica := store.New(proc.NewFS("replica", hw.TableISpec().LocalDisk), cfg)
			st.AttachReplica(replica, hw.TableISpec().Inter.NIC)
			if _, _, err := st.Put(clock, "bench", data); err != nil {
				b.Fatal(err)
			}
			replicaX = float64(st.TotalStoredBytes()+replica.TotalStoredBytes()) / float64(len(data))
		}
		b.ReportMetric(fleetX, "fleet-overhead-x")
		b.ReportMetric(replicaX, "replica-overhead-x")
	})
}

// BenchmarkScrubHeal measures the store's self-repair pass: a 3-generation
// checkpoint sequence with a replica attached, a quarter of the stored
// chunks rotted at rest, and one Scrub healing every one of them back from
// the replica. Reported metrics are the healed volume and the virtual time
// the repair pass cost.
func BenchmarkScrubHeal(b *testing.B) {
	var rep store.ScrubReport
	var rotted int
	var scrubTime vtime.Duration
	for i := 0; i < b.N; i++ {
		clock := vtime.NewClock()
		st := store.New(proc.NewFS("ckpt-disk", hw.TableISpec().LocalDisk), store.Config{})
		replica := store.New(proc.NewFS("replica-disk", hw.TableISpec().LocalDisk), store.Config{})
		st.AttachReplica(replica, hw.TableISpec().Inter.NIC)

		base := make([]byte, 4<<20)
		rand.New(rand.NewSource(7)).Read(base)
		for gen := 0; gen < 3; gen++ {
			v := append([]byte(nil), base...)
			rand.New(rand.NewSource(int64(100 + gen))).Read(v[gen<<20 : gen<<20+(64<<10)])
			if _, _, err := st.Put(clock, "bench", v); err != nil {
				b.Fatal(err)
			}
		}
		rotted = 0
		for idx, p := range st.FS().List() {
			if !strings.Contains(p, "/chunks/") || idx%4 != 0 {
				continue
			}
			data, err := st.FS().ReadFile(clock, p)
			if err != nil {
				b.Fatal(err)
			}
			data[len(data)/2] ^= 0xFF
			if err := st.FS().WriteFile(clock, p, data); err != nil {
				b.Fatal(err)
			}
			rotted++
		}
		sw := vtime.NewStopwatch(clock)
		var err error
		rep, err = st.Scrub(clock)
		if err != nil {
			b.Fatal(err)
		}
		scrubTime = sw.Elapsed()
		if !rep.OK() || rep.Healed.ChunksHealed < rotted {
			b.Fatalf("scrub healed %d of %d rotted chunks, findings %v",
				rep.Healed.ChunksHealed, rotted, rep.Findings)
		}
	}
	b.ReportMetric(float64(rep.Healed.ChunksHealed), "healed-chunks")
	b.ReportMetric(float64(rep.Healed.BytesHealed)/1e6, "healed-MB")
	b.ReportMetric(scrubTime.Seconds()*1e3, "scrub-ms")
}

// BenchmarkProxyFailover runs oclMatrixMul while a seeded plan crashes the
// proxy process every few calls (AutoFailover + ShadowFull absorb the
// crashes) and reports the recovery cost: failovers per run, API calls
// replayed to rebind the object database, and the virtual rebind latency.
func BenchmarkProxyFailover(b *testing.B) {
	var fs core.FailoverStats
	for i := 0; i < b.N; i++ {
		inj := ipc.NewFaultInjector(ipc.FaultPlan{
			Seed:      2026,
			EveryN:    6,
			SkipFirst: 5,
			Kinds:     []ipc.FaultKind{ipc.FaultCrashServer},
		})
		_, c, _ := benchCheCLApp(b, "oclMatrixMul", core.Options{
			AutoFailover: true,
			Shadow:       core.ShadowFull,
			Fault:        inj,
		})
		fs = c.FailoverStats()
		if fs.Failovers == 0 {
			b.Fatal("no failover happened; benchmark measures nothing")
		}
		c.Detach()
	}
	b.ReportMetric(float64(fs.Failovers), "failovers/op")
	b.ReportMetric(float64(fs.ReplayedCalls), "replayed-calls/op")
	b.ReportMetric(fs.TotalRecovery.Seconds()*1e3, "recovery-ms")
	b.ReportMetric(fs.LastRecovery.Seconds()*1e3, "last-recovery-ms")
}

// benchProxyApp attaches CheCL and builds the vadd pipeline objects used
// by the hot-path sub-benchmarks.
func benchProxyApp(b *testing.B, opts core.Options) (*core.CheCL, ocl.CommandQueue, ocl.Kernel, [3]ocl.Mem) {
	b.Helper()
	node := proc.NewNode("bench", hw.TableISpec(), ocl.NVIDIA())
	p := node.Spawn("bench")
	c, err := core.Attach(p, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Detach)
	plats, err := c.GetPlatformIDs()
	if err != nil {
		b.Fatal(err)
	}
	devs, err := c.GetDeviceIDs(plats[0], ocl.DeviceTypeGPU)
	if err != nil {
		b.Fatal(err)
	}
	ctx, err := c.CreateContext(devs)
	if err != nil {
		b.Fatal(err)
	}
	q, err := c.CreateCommandQueue(ctx, devs[0], 0)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := c.CreateProgramWithSource(ctx, `
__kernel void vadd(__global const float* a, __global const float* b,
                   __global float* c, uint n) {
    size_t i = get_global_id(0);
    if (i < n) c[i] = a[i] + b[i];
}`)
	if err != nil {
		b.Fatal(err)
	}
	if err := c.BuildProgram(prog, ""); err != nil {
		b.Fatal(err)
	}
	k, err := c.CreateKernel(prog, "vadd")
	if err != nil {
		b.Fatal(err)
	}
	const n = 256
	var mems [3]ocl.Mem
	for i := range mems {
		if mems[i], err = c.CreateBuffer(ctx, ocl.MemReadWrite, 4*n, nil); err != nil {
			b.Fatal(err)
		}
		hb := make([]byte, 8)
		for j := 0; j < 8; j++ {
			hb[j] = byte(uint64(mems[i]) >> (8 * j))
		}
		if err := c.SetKernelArg(k, i, 8, hb); err != nil {
			b.Fatal(err)
		}
	}
	nb := make([]byte, 4)
	for j := 0; j < 4; j++ {
		nb[j] = byte(uint32(n) >> (8 * j))
	}
	if err := c.SetKernelArg(k, 3, 4, nb); err != nil {
		b.Fatal(err)
	}
	return c, q, k, mems
}

// BenchmarkProxyCallOverhead measures the wall-clock (not virtual) cost
// of the interposition hot path. Sub-benchmarks contrast the pipelined
// paths against the classic one-round-trip-per-call path, and the framed
// stream against the shared-memory ring transport. The ipc-roundtrips/op
// metric counts calls that waited for a response; posted/op counts
// fire-and-forget submissions that completed with zero round trips.
func BenchmarkProxyCallOverhead(b *testing.B) {
	ringOpts := func(opts core.Options) core.Options {
		opts.Transport = proxy.TransportRing
		return opts
	}
	roundTrips := func(b *testing.B, c *core.CheCL, before proxy.Stats) {
		b.Helper()
		st := c.Proxy().Client.Stats()
		sync := (st.Calls - st.Posted) - (before.Calls - before.Posted)
		b.ReportMetric(float64(sync)/float64(b.N), "ipc-roundtrips/op")
		b.ReportMetric(float64(st.Posted-before.Posted)/float64(b.N), "posted/op")
	}

	// Immutable info served from the object DB: zero round trips once warm.
	b.Run("info-cached", func(b *testing.B) {
		c, _, _, _ := benchProxyApp(b, core.Options{})
		before := c.Proxy().Client.Stats()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.GetPlatformIDs(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		roundTrips(b, c, before)
	})

	// A query CheCL cannot cache: the one-round-trip-per-call baseline.
	b.Run("info-forwarded", func(b *testing.B) {
		c, _, _, mems := benchProxyApp(b, core.Options{})
		before := c.Proxy().Client.Stats()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.GetMemObjectInfo(mems[0]); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		roundTrips(b, c, before)
	})

	// The enqueue loop every compute app runs: 3 launches + clFinish.
	launchLoop := func(b *testing.B, opts core.Options) {
		c, q, k, _ := benchProxyApp(b, opts)
		before := c.Proxy().Client.Stats()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < 3; j++ {
				if _, err := c.EnqueueNDRangeKernel(q, k, 1, [3]int{}, [3]int{256}, [3]int{64}, nil); err != nil {
					b.Fatal(err)
				}
			}
			if err := c.Finish(q); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		roundTrips(b, c, before)
	}
	b.Run("launch-unbatched", func(b *testing.B) { launchLoop(b, core.Options{}) })
	b.Run("launch-batched", func(b *testing.B) { launchLoop(b, core.Options{BatchEnqueues: true}) })
	b.Run("launch-unbatched-ring", func(b *testing.B) { launchLoop(b, ringOpts(core.Options{})) })
	b.Run("launch-batched-ring", func(b *testing.B) { launchLoop(b, ringOpts(core.Options{BatchEnqueues: true})) })

	// The argument-rebinding loop iterative solvers run between launches:
	// 3 clSetKernelArg + 1 launch + clFinish. Unbatched on the framed
	// stream that is 5 synchronous round trips; the ring posts the three
	// SetKernelArg calls fire-and-forget (zero round trips until the
	// clFinish sync point) and pays only 2.
	setArgsLoop := func(b *testing.B, opts core.Options) {
		c, q, k, _ := benchProxyApp(b, opts)
		nb := make([]byte, 4)
		before := c.Proxy().Client.Stats()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < 3; j++ {
				nb[0] = byte(i + j)
				if err := c.SetKernelArg(k, 3, 4, nb); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := c.EnqueueNDRangeKernel(q, k, 1, [3]int{}, [3]int{256}, [3]int{64}, nil); err != nil {
				b.Fatal(err)
			}
			if err := c.Finish(q); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		roundTrips(b, c, before)
	}
	b.Run("setargs-framed", func(b *testing.B) { setArgsLoop(b, core.Options{}) })
	b.Run("setargs-ring", func(b *testing.B) { setArgsLoop(b, ringOpts(core.Options{})) })

	// 1 MB buffer traffic over the zero-copy raw frames.
	bigBuffer := func(b *testing.B, c *core.CheCL, sample ocl.Mem) ocl.Mem {
		b.Helper()
		info, err := c.GetMemObjectInfo(sample)
		if err != nil {
			b.Fatal(err)
		}
		big, err := c.CreateBuffer(info.Context, ocl.MemReadWrite, 1<<20, nil)
		if err != nil {
			b.Fatal(err)
		}
		return big
	}
	b.Run("write-1MB-raw", func(b *testing.B) {
		c, q, _, mems := benchProxyApp(b, core.Options{})
		big := bigBuffer(b, c, mems[0])
		data := make([]byte, 1<<20)
		b.SetBytes(1 << 20)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.EnqueueWriteBuffer(q, big, true, 0, data, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("read-1MB-raw", func(b *testing.B) {
		c, q, _, mems := benchProxyApp(b, core.Options{})
		big := bigBuffer(b, c, mems[0])
		if _, err := c.EnqueueWriteBuffer(q, big, true, 0, make([]byte, 1<<20), nil); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(1 << 20)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := c.EnqueueReadBuffer(q, big, true, 0, 1<<20, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Same read with a caller-pooled destination: the raw frame lands in
	// the reused buffer and the steady state allocates nothing per call.
	b.Run("read-1MB-pooled", func(b *testing.B) {
		c, q, _, mems := benchProxyApp(b, core.Options{})
		big := bigBuffer(b, c, mems[0])
		if _, err := c.EnqueueWriteBuffer(q, big, true, 0, make([]byte, 1<<20), nil); err != nil {
			b.Fatal(err)
		}
		buf := make([]byte, 1<<20)
		b.SetBytes(1 << 20)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := c.EnqueueReadBufferInto(q, big, true, 0, 1<<20, nil, buf); err != nil {
				b.Fatal(err)
			}
		}
	})

	// The same 1 MB traffic over the shared-memory ring: no frame
	// headers, no copy into a socket buffer — the write payload crosses
	// by reference and the read lands zero-copy in the pooled buffer via
	// the ring-aware server handler.
	b.Run("write-1MB-ring", func(b *testing.B) {
		c, q, _, mems := benchProxyApp(b, ringOpts(core.Options{}))
		big := bigBuffer(b, c, mems[0])
		data := make([]byte, 1<<20)
		b.SetBytes(1 << 20)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.EnqueueWriteBuffer(q, big, true, 0, data, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("read-1MB-ring", func(b *testing.B) {
		c, q, _, mems := benchProxyApp(b, ringOpts(core.Options{}))
		big := bigBuffer(b, c, mems[0])
		if _, err := c.EnqueueWriteBuffer(q, big, true, 0, make([]byte, 1<<20), nil); err != nil {
			b.Fatal(err)
		}
		buf := make([]byte, 1<<20)
		b.SetBytes(1 << 20)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := c.EnqueueReadBufferInto(q, big, true, 0, 1<<20, nil, buf); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- concurrent incremental checkpointing (DESIGN.md §9) ----

// benchBufferSet attaches CheCL and populates count device buffers of
// size bytes each with deterministic pseudo-random content, the working
// set the checkpoint-path benchmarks drain.
func benchBufferSet(b *testing.B, opts core.Options, count int, size int64) (*proc.Node, *core.CheCL, ocl.CommandQueue, []ocl.Mem) {
	b.Helper()
	node := proc.NewNode("bench", hw.TableISpec(), ocl.NVIDIA())
	p := node.Spawn("bench")
	c, err := core.Attach(p, opts)
	if err != nil {
		b.Fatal(err)
	}
	plats, err := c.GetPlatformIDs()
	if err != nil {
		b.Fatal(err)
	}
	devs, err := c.GetDeviceIDs(plats[0], ocl.DeviceTypeGPU)
	if err != nil {
		b.Fatal(err)
	}
	ctx, err := c.CreateContext(devs)
	if err != nil {
		b.Fatal(err)
	}
	q, err := c.CreateCommandQueue(ctx, devs[0], 0)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	data := make([]byte, size)
	mems := make([]ocl.Mem, count)
	for i := range mems {
		if mems[i], err = c.CreateBuffer(ctx, ocl.MemReadWrite, size, nil); err != nil {
			b.Fatal(err)
		}
		rng.Read(data)
		if _, err := c.EnqueueWriteBuffer(q, mems[i], true, 0, data, nil); err != nil {
			b.Fatal(err)
		}
	}
	return node, c, q, mems
}

// BenchmarkCheckpointDrain contrasts the serial device-to-host drain
// (one blocking read and one IPC round trip per buffer) with the
// parallel worker-pool drain (one batched IPC call, reads spread over
// ephemeral per-worker queues) on a 128-buffer, 32 MB working set.
func BenchmarkCheckpointDrain(b *testing.B) {
	for _, workers := range []int{1, 8} {
		workers := workers
		name := "serial"
		if workers > 1 {
			name = fmt.Sprintf("parallel-x%d", workers)
		}
		b.Run(name, func(b *testing.B) {
			var st core.CheckpointStats
			for i := 0; i < b.N; i++ {
				node, c, _, _ := benchBufferSet(b, core.Options{DrainWorkers: workers}, 128, 256<<10)
				var err error
				st, err = c.Checkpoint(node.LocalDisk, "drain.ckpt")
				if err != nil {
					b.Fatal(err)
				}
				c.Detach()
			}
			b.ReportMetric(st.Phases.Preprocess.Seconds()*1e6, "preprocess-us")
			b.ReportMetric(float64(st.DrainWorkers), "drain-workers")
		})
	}
}

// BenchmarkIncrementalCopiedBytes measures the bytes the second
// checkpoint drains after the application rewrote one of eight buffers:
// full mode re-copies the whole working set, incremental mode copies the
// one dirty buffer and reuses the parent's chunk refs for the rest.
func BenchmarkIncrementalCopiedBytes(b *testing.B) {
	for _, inc := range []bool{false, true} {
		inc := inc
		name := "full"
		if inc {
			name = "incremental"
		}
		b.Run(name, func(b *testing.B) {
			var st core.CheckpointStats
			for i := 0; i < b.N; i++ {
				node, c, q, mems := benchBufferSet(b, core.Options{Incremental: inc}, 8, 1<<20)
				if _, err := c.Checkpoint(node.LocalDisk, "inc1.ckpt"); err != nil {
					b.Fatal(err)
				}
				if _, err := c.EnqueueWriteBuffer(q, mems[0], true, 0, make([]byte, 1<<20), nil); err != nil {
					b.Fatal(err)
				}
				var err error
				st, err = c.Checkpoint(node.LocalDisk, "inc2.ckpt")
				if err != nil {
					b.Fatal(err)
				}
				c.Detach()
			}
			b.ReportMetric(float64(st.DirtyBytes)/1e6, "copied-MB")
			b.ReportMetric(float64(st.CleanBytes)/1e6, "clean-MB")
			b.ReportMetric(st.Phases.Preprocess.Seconds()*1e6, "second-ckpt-preprocess-us")
		})
	}
}

// ---- speculative stop-free checkpointing (DESIGN.md §15) ----

// benchSpecSweep takes one store checkpoint of a 32-buffer working set
// with a violation fraction frac: after the epoch begins (speculative
// arm), frac of the buffers are rewritten — violating their in-flight
// copies — while blocking readbacks of the last buffer stand in for the
// application's continued execution, the time the speculative drain
// hides behind. The stop-drain arm performs the identical work before a
// conventional checkpoint.
func benchSpecSweep(b *testing.B, speculative bool, frac float64) core.CheckpointStats {
	b.Helper()
	const bufs, size = 32, int64(1 << 20)
	opts := core.Options{Mode: core.Delayed, Incremental: true, DrainWorkers: 8, OverlapStoreWrite: true}
	opts.SpeculativeDrain = speculative
	node, c, q, mems := benchBufferSet(b, opts, bufs, size)
	defer c.Detach()
	st := store.New(proc.NewFS("spec-disk", hw.TableISpec().LocalDisk), store.Config{})
	_ = node

	if speculative {
		if err := c.BeginCheckpointEpoch(); err != nil {
			b.Fatal(err)
		}
	}
	junk := make([]byte, size)
	for i := 0; i < int(float64(bufs)*frac+0.5); i++ {
		if _, err := c.EnqueueWriteBuffer(q, mems[i], true, 0, junk, nil); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 32; i++ { // app progress: blocking readbacks
		if _, _, err := c.EnqueueReadBuffer(q, mems[bufs-1], true, 0, size, nil); err != nil {
			b.Fatal(err)
		}
	}
	stats, err := c.CheckpointToStore(st, "sweep")
	if err != nil {
		b.Fatal(err)
	}
	if err := c.WaitBackgroundWrite(); err != nil {
		b.Fatal(err)
	}
	return stats
}

// BenchmarkSpeculativeStall is the PR's acceptance experiment: the
// application-visible checkpoint stall of the stop-drain path vs the
// speculative epoch, on the Fig. 4 applications (re-running the app
// mid-epoch as the overlapped workload) and on a write-hot synthetic
// sweep over the violation fraction. At low violation the speculative
// stall must be an order of magnitude below stop-drain; at 100%
// violation every copy is retaken, and it must never be worse.
func BenchmarkSpeculativeStall(b *testing.B) {
	for _, appName := range []string{"oclVectorAdd", "oclMatrixMul", "oclDCT8x8"} {
		for _, spec := range []bool{false, true} {
			appName, spec := appName, spec
			mode := "stop-drain"
			if spec {
				mode = "speculative"
			}
			b.Run(fmt.Sprintf("app=%s/mode=%s", appName, mode), func(b *testing.B) {
				var stats core.CheckpointStats
				for i := 0; i < b.N; i++ {
					opts := core.Options{Mode: core.Delayed, Incremental: true, DrainWorkers: 8, OverlapStoreWrite: true, SpeculativeDrain: spec}
					node, c, app := benchCheCLApp(b, appName, opts)
					st := store.New(proc.NewFS("spec-disk", hw.TableISpec().LocalDisk), store.Config{})
					_ = node
					if spec {
						if err := c.BeginCheckpointEpoch(); err != nil {
							b.Fatal(err)
						}
					}
					// The application keeps computing while the epoch drains.
					env := &apps.Env{API: c, DeviceMask: ocl.DeviceTypeGPU, Scale: benchScale}
					if _, err := app.Run(env); err != nil {
						b.Fatal(err)
					}
					var err error
					stats, err = c.CheckpointToStore(st, appName)
					if err != nil {
						b.Fatal(err)
					}
					if err := c.WaitBackgroundWrite(); err != nil {
						b.Fatal(err)
					}
					c.Detach()
				}
				b.ReportMetric(stats.StallTime.Seconds()*1e6, "stall-us")
				b.ReportMetric(stats.Overlap.Seconds()*1e6, "overlap-us")
				b.ReportMetric(float64(stats.ViolatedBuffers), "violated")
			})
		}
	}
	for _, frac := range []float64{0, 0.25, 0.5, 1.0} {
		for _, spec := range []bool{false, true} {
			frac, spec := frac, spec
			mode := "stop-drain"
			if spec {
				mode = "speculative"
			}
			b.Run(fmt.Sprintf("sweep/f=%.2f/mode=%s", frac, mode), func(b *testing.B) {
				var stats core.CheckpointStats
				for i := 0; i < b.N; i++ {
					stats = benchSpecSweep(b, spec, frac)
				}
				b.ReportMetric(stats.StallTime.Seconds()*1e6, "stall-us")
				b.ReportMetric(stats.Phases.Preprocess.Seconds()*1e6, "drain-us")
				b.ReportMetric(stats.Overlap.Seconds()*1e6, "overlap-us")
				b.ReportMetric(float64(stats.RecopiedBytes)/1e6, "recopied-MB")
			})
		}
	}
}

// BenchmarkStorePutPipeline contrasts the serial store Put (each chunk
// compresses, then writes, in turn) with the pipelined Put that overlaps
// compression of later chunks with the write of earlier ones. The store
// sits on the RAM-disk staging tier with 1 MB chunks, where Put is
// compression-bound — exactly the regime the worker pipeline hides.
func BenchmarkStorePutPipeline(b *testing.B) {
	// Half-compressible payload: unique random content (no dedup) whose
	// zero halves keep the modelled compressor busy per chunk.
	payload := make([]byte, 12<<20)
	rand.New(rand.NewSource(9)).Read(payload)
	for off := 0; off < len(payload); off += 1024 {
		for j := off + 512; j < off+1024; j++ {
			payload[j] = 0
		}
	}
	for _, workers := range []int{1, 4} {
		workers := workers
		name := "serial"
		if workers > 1 {
			name = fmt.Sprintf("pipelined-x%d", workers)
		}
		b.Run(name, func(b *testing.B) {
			var put store.PutStats
			for i := 0; i < b.N; i++ {
				node := proc.NewNode("bench", hw.TableISpec(), ocl.NVIDIA())
				st := store.New(node.RAMDisk, store.Config{
					MinChunk: 256 << 10, AvgChunk: 1 << 20, MaxChunk: 4 << 20,
					PipelineWorkers: workers,
				})
				var err error
				_, put, err = st.Put(node.Clock, "pipe", payload)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(put.Time.Seconds()*1e3, "put-ms")
			b.ReportMetric(float64(put.TotalBytes)/1e6/put.Time.Seconds(), "store-MB/s")
		})
	}
}

// ---- fleet-scale checkpoint scheduler (DESIGN.md §10) ----

// BenchmarkFleetBursty is the PR's acceptance experiment: 1000 bursty
// jobs over a heterogeneous Table I inventory, the no-migration arm
// against the migration arm (identical admission and preemption). With
// rebalancing on, burst overflow parked on slow CPU devices is rescued
// onto GPUs as they free, so migration must win on BOTH throughput and
// p99 completion latency.
func BenchmarkFleetBursty(b *testing.B) {
	for _, mig := range []bool{false, true} {
		mig := mig
		name := "no-migration"
		if mig {
			name = "migration"
		}
		b.Run(name, func(b *testing.B) {
			var r fleet.Report
			for i := 0; i < b.N; i++ {
				specs := fleet.Bursty(fleet.TrafficConfig{Seed: 42, Jobs: 1000})
				cfg := fleet.Config{
					Model:      fleet.DefaultCostModel(),
					Migration:  mig,
					Preemption: true,
				}
				var err error
				r, err = fleet.New(fleet.DefaultNodes(6, 2), cfg).Run(specs)
				if err != nil {
					b.Fatal(err)
				}
				if r.Completed+len(r.Rejected) != 1000 {
					b.Fatalf("settled %d of 1000 jobs", r.Completed+len(r.Rejected))
				}
			}
			b.ReportMetric(r.ThroughputJobsPerSec, "jobs/s")
			b.ReportMetric(r.P50Latency.Seconds()*1e3, "p50-ms")
			b.ReportMetric(r.P99Latency.Seconds()*1e3, "p99-ms")
			b.ReportMetric(r.MaxLatency.Seconds()*1e3, "max-ms")
			b.ReportMetric(float64(r.Migrations), "migrations")
			b.ReportMetric(float64(r.Evictions), "evictions")
		})
	}
}

// BenchmarkPartialRestart is the PR-7 acceptance experiment: recover one
// killed rank at world sizes 8/64/256, partial restart (segment fetch +
// message replay, survivors keep running) against the full global
// rollback. Partial recovery vtime should stay roughly flat as the world
// grows — it touches one rank's bytes — while full rollback re-reads and
// re-restores every rank.
func BenchmarkPartialRestart(b *testing.B) {
	const epochs = 2
	const job = "bjob"
	mkCluster := func(size int) *proc.Cluster {
		return proc.NewCluster("bc", size, hw.TableISpec(), func(int) []*ocl.Vendor {
			return []*ocl.Vendor{ocl.AMD()}
		})
	}
	// Minimal epoch body: ring exchange + coordinated store checkpoint.
	// Non-root op order per epoch: send(1) recv(2) barrier(3) barrier(4)
	// ckpt-send(5) commit-barrier(6) — op 8 is the epoch-1 ring recv,
	// safely after the first committed generation.
	const killOp = 8
	mkBody := func(st *store.Store, checls []*core.CheCL) func(*mpi.Rank) error {
		return func(r *mpi.Rank) error {
			rank := r.Rank()
			if checls[rank] == nil {
				c, err := core.Attach(r.Process(), core.Options{})
				if err != nil {
					return err
				}
				plats, _ := c.GetPlatformIDs()
				devs, _ := c.GetDeviceIDs(plats[0], ocl.DeviceTypeAll)
				ctx, err := c.CreateContext(devs[:1])
				if err != nil {
					return err
				}
				q, err := c.CreateCommandQueue(ctx, devs[0], 0)
				if err != nil {
					return err
				}
				buf, err := c.CreateBuffer(ctx, ocl.MemReadWrite, 64<<10, nil)
				if err != nil {
					return err
				}
				state := make([]byte, 64<<10)
				for i := range state {
					state[i] = byte(rank + i)
				}
				if _, err := c.EnqueueWriteBuffer(q, buf, true, 0, state, nil); err != nil {
					return err
				}
				checls[rank] = c
			}
			size := r.Size()
			for e := r.World().Generation(); e < epochs; e++ {
				if err := r.Send((rank+1)%size, 1, []byte{byte(e)}); err != nil {
					return err
				}
				if _, err := r.Recv((rank+size-1)%size, 1); err != nil {
					return err
				}
				if _, err := r.CoordinatedCheckpointToStore(checls[rank], st, job); err != nil {
					return err
				}
			}
			return nil
		}
	}
	plan := func(victim int) *mpi.RankFaultInjector {
		return mpi.NewRankFaultInjector(mpi.RankFaultPlan{
			Seed:  1,
			Kills: []mpi.RankKill{{Rank: victim, AtOp: killOp}},
		})
	}
	for _, size := range []int{8, 64, 256} {
		size := size
		victim := size / 2
		b.Run(fmt.Sprintf("partial-%d", size), func(b *testing.B) {
			var pr *mpi.PartialRestore
			var rec mpi.RecoveryStats
			for i := 0; i < b.N; i++ {
				cl := mkCluster(size)
				st := store.New(cl.NFS, store.Config{})
				w, err := mpi.NewWorldWithOptions(cl, size, mpi.Options{
					LogMessages: true, Fault: plan(victim),
				})
				if err != nil {
					b.Fatal(err)
				}
				checls := make([]*core.CheCL, size)
				err = w.RunWithRecovery(mkBody(st, checls), func(r *mpi.Rank, _ *mpi.RankKilled) error {
					c, p, err := w.RestoreRank(st, job, r.Rank(), core.Options{})
					if err != nil {
						return err
					}
					checls[r.Rank()] = c
					pr = p
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
				if pr == nil || pr.Rank != victim {
					b.Fatalf("partial restore did not happen: %+v", pr)
				}
				rec = w.RecoveryStats()
			}
			b.ReportMetric(pr.RecoveryVtime.Seconds()*1e3, "recovery-vtime-ms")
			b.ReportMetric(float64(pr.SegmentBytes)/1e6, "restored-MB")
			b.ReportMetric(float64(rec.ReplayedMessages), "replayed-msgs")
			b.ReportMetric(rec.SurvivorStallVtime.Seconds()*1e3, "survivor-stall-ms")
		})
		b.Run(fmt.Sprintf("full-%d", size), func(b *testing.B) {
			var recovery vtime.Duration
			var restoredMB float64
			for i := 0; i < b.N; i++ {
				cl := mkCluster(size)
				st := store.New(cl.NFS, store.Config{})
				// Logging off: a rank death is unrecoverable in place and
				// the whole world unwinds — the classic global rollback.
				w, err := mpi.NewWorldWithOptions(cl, size, mpi.Options{Fault: plan(victim)})
				if err != nil {
					b.Fatal(err)
				}
				checls := make([]*core.CheCL, size)
				if err := w.Run(mkBody(st, checls)); !errors.Is(err, mpi.ErrRankDown) {
					b.Fatalf("run = %v, want ErrRankDown", err)
				}
				for _, r := range w.Ranks() {
					r.Process().Kill()
				}
				before := make([]vtime.Time, len(cl.Nodes))
				for n, node := range cl.Nodes {
					before[n] = node.Clock.Now()
				}
				restored, _, err := mpi.RestoreGlobalFromStore(cl, st, job, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				recovery = 0
				for n, node := range cl.Nodes {
					if d := node.Clock.Now().Sub(before[n]); d > recovery {
						recovery = d
					}
				}
				restoredMB = 0
				for _, c := range restored {
					restoredMB += 64.0 / 1024
					c.Detach()
					c.App().Kill()
				}
			}
			b.ReportMetric(recovery.Seconds()*1e3, "recovery-vtime-ms")
			b.ReportMetric(restoredMB, "restored-MB")
		})
	}
}

// BenchmarkInterpreterThroughput measures the OpenCL C interpreter on the
// vadd kernel (wall-clock work-items per second).
func BenchmarkInterpreterThroughput(b *testing.B) {
	rt := ocl.NewRuntime(ocl.NVIDIA(), hw.TableISpec(), vtime.NewClock())
	plats, _ := rt.GetPlatformIDs()
	devs, _ := rt.GetDeviceIDs(plats[0], ocl.DeviceTypeAll)
	ctx, _ := rt.CreateContext(devs)
	q, _ := rt.CreateCommandQueue(ctx, devs[0], 0)
	prog, _ := rt.CreateProgramWithSource(ctx, `
__kernel void vadd(__global const float* a, __global const float* b,
                   __global float* c, uint n) {
    size_t i = get_global_id(0);
    if (i < n) c[i] = a[i] + b[i];
}`)
	if err := rt.BuildProgram(prog, ""); err != nil {
		b.Fatal(err)
	}
	k, _ := rt.CreateKernel(prog, "vadd")
	const n = 1 << 14
	buf, _ := rt.CreateBuffer(ctx, ocl.MemReadWrite, 4*n, nil)
	h := make([]byte, 8)
	for i := 0; i < 8; i++ {
		h[i] = byte(uint64(buf) >> (8 * i))
	}
	nn := make([]byte, 4)
	nv := uint32(n)
	for i := 0; i < 4; i++ {
		nn[i] = byte(nv >> (8 * i))
	}
	rt.SetKernelArg(k, 0, 8, h)
	rt.SetKernelArg(k, 1, 8, h)
	rt.SetKernelArg(k, 2, 8, h)
	rt.SetKernelArg(k, 3, 4, nn)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.EnqueueNDRangeKernel(q, k, 1, [3]int{}, [3]int{n}, [3]int{64}, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n), "work-items/op")
}
