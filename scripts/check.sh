#!/bin/sh
# Tier-1 gate: formatting, vet, build, and the full test suite under the
# race detector. CI and pre-merge both run exactly this script.
set -eu
cd "$(dirname "$0")/.."

fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$fmt" >&2
    exit 1
fi

go vet ./...
go build ./...
go test -race ./...
# Fault-tolerance soak: the fault-injection and failover tests are the ones
# most likely to flake under scheduling nondeterminism, so run them repeatedly
# under the race detector.
go test -run Fault -count=5 -race ./internal/...
# Durability gate: the disk-fault, crash-recovery, and self-healing paths
# run repeatedly under the race detector, and the store CLI must stay clean
# both fault-free and under a seeded disk fault plan.
go test -run 'DiskFault|Durable|Recover|Scrub|Heal|Degraded|Interrupted' -count=3 -race \
    ./internal/proc/ ./internal/store/ ./internal/core/ ./internal/mpi/
go run ./cmd/checl-inspect store fsck >/dev/null
go run ./cmd/checl-inspect -disk-faults 7 store scrub >/dev/null
# Hot-path gate: the pipelined proxy path (raw frames, enqueue batching,
# info caches, stats counters) crosses goroutines in ipc/proxy/core, so its
# tests get their own repeated race-detector pass.
go vet ./internal/ipc/ ./internal/proxy/ ./internal/core/
go test -run 'Raw|Batch|Cache|StatsRace' -count=3 -race \
    ./internal/ipc/ ./internal/proxy/ ./internal/core/
# Concurrent-checkpoint gate: dirty-buffer tracking, the parallel drain
# pool, and the overlapped background store write cross goroutines, so
# their tests run repeatedly under the race detector. The ablation run
# keeps the full-vs-incremental and serial-vs-parallel-drain orderings
# honest, and the inspect demo exercises the dirty/clean split end to end.
go test -run 'Incremental|ParallelDrain|Overlapped|BackgroundWrite|Released' -count=3 -race \
    ./internal/core/
go test -run 'TestAblations' -race ./internal/harness/
go run ./cmd/checl-inspect -incremental -scale 0.2 >/dev/null
# Fleet-scheduler gate: the 500-job bursty soak (with sampled jobs going
# through the real core+store eviction path) and the planner/fleet
# determinism tests run under the race detector, and the operator view
# must render a sampled scenario cleanly.
go test -run 'TestFleetSampledSoak|TestFleetDeterminism|TestFleetMigrationBeatsBaseline|TestFleetRealEvictionBitIdentical' \
    -count=2 -race ./internal/fleet/
go test -run 'TestPlanDeterministicAcrossInputOrders' -count=3 -race ./internal/sched/
go run ./cmd/checl-inspect -fleet-jobs 200 -fleet-sample 40 fleet >/dev/null
# Partial-restart gate: the seeded rank-kill soak sweeps the kill across
# every MPI-op position of a victim rank (bit-identical completion, one
# partial restore each), the collectives/two-deaths/log-bound tests cover
# the replay protocol edges, and the inspect demo drives a kill+restore
# end to end. All repeatedly under the race detector: RestoreRank runs
# concurrently with parked survivors by construction.
go test -run 'TestRankKillPositionSweep|TestPartialRestore|TestCollectivesDuringRecovery|TestTwoRanksDieSameEpoch|TestMessageLogBounded|TestRankDownWithoutLogging|TestRankFaultInjector' \
    -count=3 -race ./internal/mpi/
go run ./cmd/checl-inspect mpi >/dev/null
# Ring-transport gate: the lock-free SPSC queues, fire-and-forget posting,
# and the checkpoint drain over the ring cross goroutines by construction,
# so the ring unit tests and the cross-transport parity soak run repeatedly
# under the race detector. The inspect smoke proves the CLI can drive a
# full run+checkpoint over the ring.
go test -run 'Ring|TransportParity' -count=3 -race \
    ./internal/ipc/ ./internal/proxy/ ./internal/core/
go run ./cmd/checl-inspect -transport ring -scale 0.2 >/dev/null
# Erasure-fleet gate: the sharded checkpoint fleet's node-loss surface —
# the (node, fault-position) kill sweep, every-loss-pattern degraded
# reads, rebuild/scrub/GC, the seeded node-fault soak, and the app/MPI
# restores through the fleet with m nodes down — runs repeatedly under
# the race detector (Scrub and the soak fan out goroutines per node).
# The inspect smoke drives checkpoint -> degraded read -> node
# replacement -> rebuild end to end under a seeded node fault plan.
go test -run 'TestFleet|TestNodeKillPositionSweep|TestNodeFault' -count=2 -race \
    ./internal/store/ ./internal/proc/
go test -run 'TestFleetStoreAppsDegradedBitIdentical' -race ./internal/core/
go test -run 'TestGlobalSnapshotThroughErasureFleet' -count=2 -race ./internal/mpi/
go test -run 'TestFleetErasureStoreSoak' -race ./internal/fleet/
go run ./cmd/checl-inspect -node-faults 11 store fleet >/dev/null
# Speculative-checkpoint gate: the epoch state machine's drain streams,
# validation and bounded retry ladder cross goroutines (the speculative
# copies ride the parallel drain pool), so the epoch tests, the
# conservative-fallback and abort paths, and the speculative fault soak
# run repeatedly under the race detector. The inspect smoke drives a
# speculative incremental checkpoint end to end.
go test -run 'Speculat|Epoch' -count=3 -race ./internal/core/
go test -run 'TestCoordinatedSpeculativeCheckpoint' -count=2 -race ./internal/mpi/
go test -run 'TestFleetSpeculativeDrain|TestMigrationCostSpeculativeStall' -race \
    ./internal/fleet/ ./internal/sched/
go run ./cmd/checl-inspect -incremental -speculative -scale 0.2 >/dev/null
echo "check.sh: all green"
