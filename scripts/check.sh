#!/bin/sh
# Tier-1 gate: formatting, vet, build, and the full test suite under the
# race detector. CI and pre-merge both run exactly this script.
set -eu
cd "$(dirname "$0")/.."

fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$fmt" >&2
    exit 1
fi

go vet ./...
go build ./...
go test -race ./...
echo "check.sh: all green"
