#!/bin/sh
# Hot-path benchmark harness: runs the Fig. 4 overhead sweep, the
# proxy-call microbenchmarks, the concurrent-checkpoint benchmarks, the
# fleet-scheduler arms, and the partial-restart recovery sweep, then
# distils the headline metrics into BENCH_pr3.json, BENCH_pr5.json,
# BENCH_pr6.json, BENCH_pr7.json, BENCH_pr8.json, BENCH_pr9.json and
# BENCH_pr10.json at the repo root.
#
# Usage: scripts/bench.sh [benchtime]   (default 200x)
set -eu
cd "$(dirname "$0")/.."

benchtime=${1:-200x}
out=BENCH_pr3.json
out5=BENCH_pr5.json
out6=BENCH_pr6.json
out7=BENCH_pr7.json
out8=BENCH_pr8.json
out9=BENCH_pr9.json
out10=BENCH_pr10.json
tmp=$(mktemp)
tmp5=$(mktemp)
tmp6=$(mktemp)
tmp7=$(mktemp)
tmp9=$(mktemp)
tmp10=$(mktemp)
trap 'rm -f "$tmp" "$tmp5" "$tmp6" "$tmp7" "$tmp9" "$tmp10"' EXIT

go test -run '^$' -bench 'BenchmarkProxyCallOverhead' -benchmem \
    -benchtime "$benchtime" . >"$tmp"
go test -run '^$' -bench 'BenchmarkFig4RuntimeOverhead' \
    -benchtime 1x . >>"$tmp"
go test -run '^$' -bench 'BenchmarkScrubHeal' \
    -benchtime 3x . >>"$tmp"
go test -run '^$' \
    -bench 'BenchmarkCheckpointDrain|BenchmarkIncrementalCopiedBytes|BenchmarkStorePutPipeline' \
    -benchtime 3x . >"$tmp5"
go test -run '^$' -bench 'BenchmarkFleetBursty' -benchtime 3x . >"$tmp6"
go test -run '^$' -bench 'BenchmarkPartialRestart' -benchtime 1x . >"$tmp7"
go test -run '^$' -bench 'BenchmarkErasureFleet' -benchtime 1x . >"$tmp9"
go test -run '^$' -bench 'BenchmarkSpeculativeStall' -benchtime 1x . >"$tmp10"

awk '
function grab(line, unit,   i, n, f) {
    n = split(line, f, /[ \t]+/)
    for (i = 1; i < n; i++) if (f[i+1] == unit) return f[i]
    return ""
}
/^BenchmarkProxyCallOverhead\// {
    name = $1
    sub(/^BenchmarkProxyCallOverhead\//, "", name)
    sub(/-[0-9]+$/, "", name)
    ns[name]     = grab($0, "ns/op")
    trips[name]  = grab($0, "ipc-roundtrips/op")
    allocs[name] = grab($0, "allocs/op")
    mbs[name]    = grab($0, "MB/s")
}
/^BenchmarkScrubHeal/ {
    heal_chunks = grab($0, "healed-chunks")
    heal_mb     = grab($0, "healed-MB")
    scrub_ms    = grab($0, "scrub-ms")
}
/^BenchmarkFig4RuntimeOverhead\// {
    cfg = $1
    sub(/^BenchmarkFig4RuntimeOverhead\//, "", cfg)
    sub(/-[0-9]+$/, "", cfg)
    fig4[cfg] = grab($0, "avg-overhead-%")
    cfgs = cfgs (cfgs == "" ? "" : " ") cfg
}
END {
    printf "{\n"
    printf "  \"fig4_avg_overhead_pct\": {"
    n = split(cfgs, c, " ")
    for (i = 1; i <= n; i++)
        printf "%s\"%s\": %s", (i > 1 ? ", " : ""), c[i], fig4[c[i]]
    printf "},\n"
    printf "  \"proxy_call\": {\n"
    first = 1
    for (name in ns) {
        printf "%s    \"%s\": {\"ns_per_call\": %s, \"allocs_per_call\": %s",
               (first ? "" : ",\n"), name, ns[name], allocs[name]
        if (trips[name] != "") printf ", \"ipc_roundtrips_per_op\": %s", trips[name]
        if (mbs[name]   != "") printf ", \"mb_per_s\": %s", mbs[name]
        printf "}"
        first = 0
    }
    printf "\n  },\n"
    if (trips["launch-batched"] + 0 > 0)
        printf "  \"launch_roundtrip_reduction\": %.1f,\n",
               trips["launch-unbatched"] / trips["launch-batched"]
    if (ns["info-cached"] + 0 > 0)
        printf "  \"info_cache_speedup\": %.1f,\n",
               ns["info-forwarded"] / ns["info-cached"]
    if (heal_chunks != "")
        printf "  \"scrub_heal\": {\"healed_chunks\": %s, \"healed_mb\": %s, \"scrub_ms\": %s},\n",
               heal_chunks, heal_mb, scrub_ms
    printf "  \"benchtime\": \"%s\"\n", BT
    printf "}\n"
}' BT="$benchtime" "$tmp" >"$out"

echo "bench.sh: wrote $out"
cat "$out"

# BENCH_pr5.json: the concurrent incremental checkpointing headlines —
# bytes the second checkpoint copies (full vs incremental), the
# serial-vs-parallel drain, the serial-vs-pipelined store Put, and the
# raw-vs-pooled 1 MB read path.
awk '
function grab(line, unit,   i, n, f) {
    n = split(line, f, /[ \t]+/)
    for (i = 1; i < n; i++) if (f[i+1] == unit) return f[i]
    return ""
}
/^BenchmarkIncrementalCopiedBytes\/full/ {
    full_copied = grab($0, "copied-MB"); full_pre = grab($0, "second-ckpt-preprocess-us")
}
/^BenchmarkIncrementalCopiedBytes\/incremental/ {
    inc_copied = grab($0, "copied-MB"); inc_clean = grab($0, "clean-MB")
    inc_pre = grab($0, "second-ckpt-preprocess-us")
}
/^BenchmarkCheckpointDrain\/serial/      { drain_serial = grab($0, "preprocess-us") }
/^BenchmarkCheckpointDrain\/parallel-x8/ { drain_par = grab($0, "preprocess-us") }
/^BenchmarkStorePutPipeline\/serial/       { put_serial = grab($0, "put-ms") }
/^BenchmarkStorePutPipeline\/pipelined-x4/ {
    put_pipe = grab($0, "put-ms"); put_mbs = grab($0, "store-MB/s")
}
/^BenchmarkProxyCallOverhead\/read-1MB-raw/ {
    read_raw_mbs = grab($0, "MB/s"); read_raw_allocs = grab($0, "allocs/op")
}
/^BenchmarkProxyCallOverhead\/read-1MB-pooled/ {
    read_pool_mbs = grab($0, "MB/s"); read_pool_allocs = grab($0, "allocs/op")
}
END {
    printf "{\n"
    printf "  \"incremental_checkpoint\": {\"full_copied_mb\": %s, \"incremental_copied_mb\": %s, \"clean_mb\": %s, \"bytes_copied_reduction\": %.1f, \"full_preprocess_us\": %s, \"incremental_preprocess_us\": %s},\n",
           full_copied, inc_copied, inc_clean, full_copied / inc_copied, full_pre, inc_pre
    printf "  \"parallel_drain\": {\"serial_preprocess_us\": %s, \"parallel_x8_preprocess_us\": %s, \"speedup\": %.2f},\n",
           drain_serial, drain_par, drain_serial / drain_par
    printf "  \"store_put_pipeline\": {\"serial_put_ms\": %s, \"pipelined_x4_put_ms\": %s, \"speedup\": %.2f, \"pipelined_mb_per_s\": %s},\n",
           put_serial, put_pipe, put_serial / put_pipe, put_mbs
    printf "  \"pooled_reads\": {\"raw_mb_per_s\": %s, \"pooled_mb_per_s\": %s, \"raw_allocs_per_op\": %s, \"pooled_allocs_per_op\": %s},\n",
           read_raw_mbs, read_pool_mbs, read_raw_allocs, read_pool_allocs
    printf "  \"benchtime\": \"%s\"\n", BT
    printf "}\n"
}' BT="$benchtime" "$tmp" "$tmp5" >"$out5"

echo "bench.sh: wrote $out5"
cat "$out5"

# BENCH_pr6.json: the fleet-scheduler acceptance experiment — 1000 bursty
# jobs, migration-as-load-balancing against the no-migration baseline.
# Migration must win on BOTH throughput and p99 completion latency.
awk '
function grab(line, unit,   i, n, f) {
    n = split(line, f, /[ \t]+/)
    for (i = 1; i < n; i++) if (f[i+1] == unit) return f[i]
    return ""
}
/^BenchmarkFleetBursty\/no-migration/ {
    base_thr = grab($0, "jobs/s"); base_p50 = grab($0, "p50-ms")
    base_p99 = grab($0, "p99-ms"); base_max = grab($0, "max-ms")
    base_evt = grab($0, "evictions")
}
/^BenchmarkFleetBursty\/migration/ {
    mig_thr = grab($0, "jobs/s"); mig_p50 = grab($0, "p50-ms")
    mig_p99 = grab($0, "p99-ms"); mig_max = grab($0, "max-ms")
    mig_migrations = grab($0, "migrations"); mig_evt = grab($0, "evictions")
}
END {
    printf "{\n"
    printf "  \"jobs\": 1000,\n"
    printf "  \"no_migration\": {\"throughput_jobs_per_s\": %s, \"p50_ms\": %s, \"p99_ms\": %s, \"max_ms\": %s, \"evictions\": %s},\n",
           base_thr, base_p50, base_p99, base_max, base_evt
    printf "  \"migration\": {\"throughput_jobs_per_s\": %s, \"p50_ms\": %s, \"p99_ms\": %s, \"max_ms\": %s, \"migrations\": %s, \"evictions\": %s},\n",
           mig_thr, mig_p50, mig_p99, mig_max, mig_migrations, mig_evt
    printf "  \"throughput_gain\": %.2f,\n", mig_thr / base_thr
    printf "  \"p99_improvement\": %.2f,\n", base_p99 / mig_p99
    printf "  \"migration_wins_both\": %s\n", (mig_thr + 0 > base_thr + 0 && mig_p99 + 0 < base_p99 + 0) ? "true" : "false"
    printf "}\n"
}' "$tmp6" >"$out6"

echo "bench.sh: wrote $out6"
cat "$out6"

# BENCH_pr7.json: the partial-restart acceptance experiment — recover one
# killed rank at world sizes 8/64/256, partial restart (per-rank segment
# fetch + sender-log replay) against the full global rollback. Partial
# recovery vtime must stay roughly flat as the world grows and beat the
# full rollback by >= 2x at 256 ranks.
awk '
function grab(line, unit,   i, n, f) {
    n = split(line, f, /[ \t]+/)
    for (i = 1; i < n; i++) if (f[i+1] == unit) return f[i]
    return ""
}
/^BenchmarkPartialRestart\/partial-/ {
    size = $1
    sub(/^BenchmarkPartialRestart\/partial-/, "", size)
    sub(/-[0-9]+$/, "", size)
    part[size]  = grab($0, "recovery-vtime-ms")
    pmb[size]   = grab($0, "restored-MB")
    stall[size] = grab($0, "survivor-stall-ms")
    sizes = sizes (sizes == "" ? "" : " ") size
}
/^BenchmarkPartialRestart\/full-/ {
    size = $1
    sub(/^BenchmarkPartialRestart\/full-/, "", size)
    sub(/-[0-9]+$/, "", size)
    full[size] = grab($0, "recovery-vtime-ms")
    fmb[size]  = grab($0, "restored-MB")
}
END {
    printf "{\n"
    printf "  \"recovery_vtime_ms\": {\n"
    n = split(sizes, s, " ")
    for (i = 1; i <= n; i++)
        printf "%s    \"%s\": {\"partial\": %s, \"full_rollback\": %s, \"speedup\": %.1f}",
               (i > 1 ? ",\n" : ""), s[i], part[s[i]], full[s[i]], full[s[i]] / part[s[i]]
    printf "\n  },\n"
    printf "  \"restored_mb\": {\n"
    for (i = 1; i <= n; i++)
        printf "%s    \"%s\": {\"partial\": %s, \"full_rollback\": %s}",
               (i > 1 ? ",\n" : ""), s[i], pmb[s[i]], fmb[s[i]]
    printf "\n  },\n"
    printf "  \"survivor_stall_ms\": {"
    for (i = 1; i <= n; i++)
        printf "%s\"%s\": %s", (i > 1 ? ", " : ""), s[i], stall[s[i]]
    printf "},\n"
    big = s[n]; small = s[1]
    printf "  \"partial_flat_8_to_256\": %s,\n",
           (part[big] + 0 < 2 * (part[small] + 0)) ? "true" : "false"
    printf "  \"partial_speedup_at_%s\": %.1f,\n", big, full[big] / part[big]
    printf "  \"partial_wins_2x_at_%s\": %s\n", big,
           (full[big] + 0 >= 2 * (part[big] + 0)) ? "true" : "false"
    printf "}\n"
}' "$tmp7" >"$out7"

echo "bench.sh: wrote $out7"
cat "$out7"

# BENCH_pr8.json: the shared-memory ring transport acceptance — the ring
# arms of the proxy microbenchmarks against their framed baselines. The
# read-1MB-ring bandwidth must be >= 2x the pooled framed read, and the
# setargs loop must show the posted (zero-round-trip) submissions the
# framed stream cannot offer.
awk '
function grab(line, unit,   i, n, f) {
    n = split(line, f, /[ \t]+/)
    for (i = 1; i < n; i++) if (f[i+1] == unit) return f[i]
    return ""
}
/^BenchmarkProxyCallOverhead\// {
    name = $1
    sub(/^BenchmarkProxyCallOverhead\//, "", name)
    sub(/-[0-9]+$/, "", name)
    ns[name]     = grab($0, "ns/op")
    trips[name]  = grab($0, "ipc-roundtrips/op")
    posted[name] = grab($0, "posted/op")
    mbs[name]    = grab($0, "MB/s")
}
END {
    printf "{\n"
    printf "  \"read_1mb\": {\"framed_pooled_mb_per_s\": %s, \"ring_mb_per_s\": %s, \"ring_speedup\": %.2f, \"ring_2x\": %s},\n",
           mbs["read-1MB-pooled"], mbs["read-1MB-ring"],
           mbs["read-1MB-ring"] / mbs["read-1MB-pooled"],
           (mbs["read-1MB-ring"] + 0 >= 2 * (mbs["read-1MB-pooled"] + 0)) ? "true" : "false"
    printf "  \"write_1mb\": {\"framed_raw_mb_per_s\": %s, \"ring_mb_per_s\": %s, \"ring_speedup\": %.2f},\n",
           mbs["write-1MB-raw"], mbs["write-1MB-ring"],
           mbs["write-1MB-ring"] / mbs["write-1MB-raw"]
    printf "  \"launch_ns\": {\"framed_batched\": %s, \"ring_batched\": %s, \"framed_unbatched\": %s, \"ring_unbatched\": %s},\n",
           ns["launch-batched"], ns["launch-batched-ring"],
           ns["launch-unbatched"], ns["launch-unbatched-ring"]
    printf "  \"setargs_loop\": {\"framed_roundtrips_per_op\": %s, \"ring_roundtrips_per_op\": %s, \"framed_posted_per_op\": %s, \"ring_posted_per_op\": %s, \"zero_roundtrip_posting\": %s},\n",
           trips["setargs-framed"], trips["setargs-ring"],
           posted["setargs-framed"], posted["setargs-ring"],
           (posted["setargs-ring"] + 0 > 0 && trips["setargs-ring"] + 0 < trips["setargs-framed"] + 0) ? "true" : "false"
    printf "  \"benchtime\": \"%s\"\n", BT
    printf "}\n"
}' BT="$benchtime" "$tmp" >"$out8"

echo "bench.sh: wrote $out8"
cat "$out8"

# BENCH_pr9.json: the erasure-coded checkpoint fleet acceptance — a
# degraded read with m nodes down must stay close to the healthy read,
# Rebuild must restore redundancy at useful throughput, cross-job dedup
# must pay for itself, and the (k+m)/k physical overhead must beat PR 4's
# full-replica baseline (fleet_overhead_beats_replica: fleet < 2x and
# strictly below the replica arm on the same payload).
awk '
function grab(line, unit,   i, n, f) {
    n = split(line, f, /[ \t]+/)
    for (i = 1; i < n; i++) if (f[i+1] == unit) return f[i]
    return ""
}
/^BenchmarkErasureFleet\/degraded-read/ {
    healthy_ms = grab($0, "healthy-read-ms")
    degraded_ms = grab($0, "degraded-read-ms")
    slowdown = grab($0, "degraded-slowdown-x")
}
/^BenchmarkErasureFleet\/rebuild/ {
    reb_mb = grab($0, "rebuilt-MB"); reb_ms = grab($0, "rebuild-ms")
    reb_mbs = grab($0, "rebuild-MB/s")
}
/^BenchmarkErasureFleet\/cross-job-dedup/ {
    dedup_jobs = grab($0, "jobs"); dedup_ratio = grab($0, "dedup-ratio-x")
}
/^BenchmarkErasureFleet\/overhead-vs-replica/ {
    fleet_x = grab($0, "fleet-overhead-x"); replica_x = grab($0, "replica-overhead-x")
}
END {
    printf "{\n"
    printf "  \"degraded_read\": {\"healthy_ms\": %s, \"degraded_ms\": %s, \"slowdown\": %s},\n",
           healthy_ms, degraded_ms, slowdown
    printf "  \"rebuild\": {\"rebuilt_mb\": %s, \"rebuild_ms\": %s, \"mb_per_s\": %s},\n",
           reb_mb, reb_ms, reb_mbs
    printf "  \"cross_job_dedup\": {\"jobs\": %s, \"ratio\": %s},\n",
           dedup_jobs, dedup_ratio
    printf "  \"storage_overhead\": {\"fleet_x\": %s, \"replica_x\": %s},\n",
           fleet_x, replica_x
    printf "  \"fleet_overhead_beats_replica\": %s\n",
           (fleet_x + 0 < 2 && fleet_x + 0 < replica_x + 0) ? "true" : "false"
    printf "}\n"
}' "$tmp9" >"$out9"

echo "bench.sh: wrote $out9"
cat "$out9"

# BENCH_pr10.json: the speculative stop-free checkpointing acceptance —
# app-visible checkpoint stall, stop-drain vs speculative epoch, on the
# Fig. 4 apps and on a write-hot synthetic sweep over the violation
# fraction. At zero violation the speculative stall must be >= 10x lower;
# at 100% violation (every copy retaken) it must never be worse than
# ~1.05x the stop-drain.
awk '
function grab(line, unit,   i, n, f) {
    n = split(line, f, /[ \t]+/)
    for (i = 1; i < n; i++) if (f[i+1] == unit) return f[i]
    return ""
}
/^BenchmarkSpeculativeStall\/app=/ {
    name = $1
    sub(/^BenchmarkSpeculativeStall\/app=/, "", name)
    sub(/-[0-9]+$/, "", name)
    split(name, p, /\/mode=/)
    app = p[1]; mode = p[2]
    app_stall[app, mode] = grab($0, "stall-us")
    app_over[app, mode]  = grab($0, "overlap-us")
    if (!(app in seen_app)) { seen_app[app] = 1; apps = apps (apps == "" ? "" : " ") app }
}
/^BenchmarkSpeculativeStall\/sweep\/f=/ {
    name = $1
    sub(/^BenchmarkSpeculativeStall\/sweep\/f=/, "", name)
    sub(/-[0-9]+$/, "", name)
    split(name, p, /\/mode=/)
    f = p[1]; mode = p[2]
    sw_stall[f, mode] = grab($0, "stall-us")
    sw_drain[f, mode] = grab($0, "drain-us")
    sw_re[f, mode]    = grab($0, "recopied-MB")
    if (!(f in seen_f)) { seen_f[f] = 1; fracs = fracs (fracs == "" ? "" : " ") f }
}
END {
    printf "{\n"
    printf "  \"apps_stall_us\": {\n"
    n = split(apps, a, " ")
    for (i = 1; i <= n; i++)
        printf "%s    \"%s\": {\"stop_drain\": %s, \"speculative\": %s, \"overlap_us\": %s}",
               (i > 1 ? ",\n" : ""), a[i],
               app_stall[a[i], "stop-drain"], app_stall[a[i], "speculative"],
               app_over[a[i], "speculative"]
    printf "\n  },\n"
    printf "  \"violation_sweep\": {\n"
    m = split(fracs, fr, " ")
    for (i = 1; i <= m; i++)
        printf "%s    \"%s\": {\"stop_drain_stall_us\": %s, \"speculative_stall_us\": %s, \"speculative_drain_us\": %s, \"recopied_mb\": %s, \"stall_reduction\": %.1f}",
               (i > 1 ? ",\n" : ""), fr[i],
               sw_stall[fr[i], "stop-drain"], sw_stall[fr[i], "speculative"],
               sw_drain[fr[i], "speculative"], sw_re[fr[i], "speculative"],
               sw_stall[fr[i], "stop-drain"] / sw_stall[fr[i], "speculative"]
    printf "\n  },\n"
    low = fr[1]; high = fr[m]
    printf "  \"stall_reduction_at_zero_violation\": %.1f,\n",
           sw_stall[low, "stop-drain"] / sw_stall[low, "speculative"]
    printf "  \"speculative_10x\": %s,\n",
           (sw_stall[low, "stop-drain"] + 0 >= 10 * (sw_stall[low, "speculative"] + 0)) ? "true" : "false"
    printf "  \"never_worse_at_full_violation\": %s\n",
           (sw_stall[high, "speculative"] + 0 <= 1.05 * (sw_stall[high, "stop-drain"] + 0)) ? "true" : "false"
    printf "}\n"
}' "$tmp10" >"$out10"

echo "bench.sh: wrote $out10"
cat "$out10"
