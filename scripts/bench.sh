#!/bin/sh
# Hot-path benchmark harness: runs the Fig. 4 overhead sweep and the
# proxy-call microbenchmarks, then distils the headline metrics into
# BENCH_pr3.json at the repo root.
#
# Usage: scripts/bench.sh [benchtime]   (default 200x)
set -eu
cd "$(dirname "$0")/.."

benchtime=${1:-200x}
out=BENCH_pr3.json
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench 'BenchmarkProxyCallOverhead' -benchmem \
    -benchtime "$benchtime" . >"$tmp"
go test -run '^$' -bench 'BenchmarkFig4RuntimeOverhead' \
    -benchtime 1x . >>"$tmp"
go test -run '^$' -bench 'BenchmarkScrubHeal' \
    -benchtime 3x . >>"$tmp"

awk '
function grab(line, unit,   i, n, f) {
    n = split(line, f, /[ \t]+/)
    for (i = 1; i < n; i++) if (f[i+1] == unit) return f[i]
    return ""
}
/^BenchmarkProxyCallOverhead\// {
    name = $1
    sub(/^BenchmarkProxyCallOverhead\//, "", name)
    sub(/-[0-9]+$/, "", name)
    ns[name]     = grab($0, "ns/op")
    trips[name]  = grab($0, "ipc-roundtrips/op")
    allocs[name] = grab($0, "allocs/op")
    mbs[name]    = grab($0, "MB/s")
}
/^BenchmarkScrubHeal/ {
    heal_chunks = grab($0, "healed-chunks")
    heal_mb     = grab($0, "healed-MB")
    scrub_ms    = grab($0, "scrub-ms")
}
/^BenchmarkFig4RuntimeOverhead\// {
    cfg = $1
    sub(/^BenchmarkFig4RuntimeOverhead\//, "", cfg)
    sub(/-[0-9]+$/, "", cfg)
    fig4[cfg] = grab($0, "avg-overhead-%")
    cfgs = cfgs (cfgs == "" ? "" : " ") cfg
}
END {
    printf "{\n"
    printf "  \"fig4_avg_overhead_pct\": {"
    n = split(cfgs, c, " ")
    for (i = 1; i <= n; i++)
        printf "%s\"%s\": %s", (i > 1 ? ", " : ""), c[i], fig4[c[i]]
    printf "},\n"
    printf "  \"proxy_call\": {\n"
    first = 1
    for (name in ns) {
        printf "%s    \"%s\": {\"ns_per_call\": %s, \"allocs_per_call\": %s",
               (first ? "" : ",\n"), name, ns[name], allocs[name]
        if (trips[name] != "") printf ", \"ipc_roundtrips_per_op\": %s", trips[name]
        if (mbs[name]   != "") printf ", \"mb_per_s\": %s", mbs[name]
        printf "}"
        first = 0
    }
    printf "\n  },\n"
    if (trips["launch-batched"] + 0 > 0)
        printf "  \"launch_roundtrip_reduction\": %.1f,\n",
               trips["launch-unbatched"] / trips["launch-batched"]
    if (ns["info-cached"] + 0 > 0)
        printf "  \"info_cache_speedup\": %.1f,\n",
               ns["info-forwarded"] / ns["info-cached"]
    if (heal_chunks != "")
        printf "  \"scrub_heal\": {\"healed_chunks\": %s, \"healed_mb\": %s, \"scrub_ms\": %s},\n",
               heal_chunks, heal_mb, scrub_ms
    printf "  \"benchtime\": \"%s\"\n", BT
    printf "}\n"
}' BT="$benchtime" "$tmp" >"$out"

echo "bench.sh: wrote $out"
cat "$out"
